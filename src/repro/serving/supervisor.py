"""Self-healing fleet supervisor: keeps K replicas serving through failures.

PR 8's loadtest harness was the measuring instrument; this module *acts* on
what it measures.  :class:`FleetSupervisor` owns K ``quorum-repro serve``
subprocesses (via :class:`~repro.serving.loadtest.ReplicaProcess`) plus the
fronting :class:`~repro.serving.proxy.RoundRobinProxy`, and runs the control
loop that keeps the fleet converging back to K healthy replicas:

* **Health loop.**  Every ``health_interval_s`` the supervisor combines
  process liveness (``poll()``) with the proxy's health probe (the same
  ``HEAD /v1/healthz`` that :meth:`RoundRobinProxy.check_backends` sends).
  ``eject_after`` consecutive probe failures remove a replica from rotation;
  ``readmit_after`` consecutive successes put it back.  A replica that fails
  probes but is not yet ejected is ``suspect`` -- still serving, on notice.

* **Crash restart with backoff + circuit breaker.**  A dead process is
  restarted after an exponential backoff with jitter (``backoff_base_s``
  doubling up to ``backoff_max_s``; the jitter de-synchronizes a fleet that
  died together).  ``crash_loop_threshold`` crash events inside
  ``crash_loop_window_s`` trip the breaker: the slot is **parked** as
  ``crash_looped`` (no further restarts burn CPU), the fleet keeps serving
  degraded, and the state is surfaced in :meth:`status` until an operator
  calls :meth:`revive`.

* **Graceful scale-in.**  :meth:`scale_to` drains before it kills: the
  replica leaves the rotation first (new requests route elsewhere; a request
  racing the drain gets the server's ``503 shutting_down`` which the proxy
  transparently replays against another backend), then SIGTERM lets the
  server finish in-flight work (``ServerRuntime.wait_idle``), with SIGKILL
  only after a bounded wait.  Zero dropped in-flight requests, by
  construction at both ends.

Per-replica state machine (reported verbatim in :meth:`status`)::

    starting -> healthy <-> suspect -> ejected -> starting (restart)
                   |                      |
                   v                      v
               draining -> stopped    crash_looped (parked; revive())

Every state change funnels through one place and is recorded into a
:class:`~repro.serving.telemetry.FlightRecorder` -- a bounded ring (plus
optional JSONL sink) of structured events (spawns, ejects, readmits,
restarts, drains, crash-loop trips) with monotonic timestamps, dumped by
``quorum-repro fleet --events`` and on abnormal exit.  :meth:`status` merges
the proxy's windowed :meth:`~repro.serving.proxy.RoundRobinProxy
.backend_stats` into each slot, so the fleet status JSON carries live
per-replica RPS and p95 latency.

Every collaborator is injectable -- ``spawner`` (subprocess creation),
``prober`` (health probe), ``clock`` and ``jitter`` -- so the whole state
machine is unit-testable with fakes and a manual :meth:`tick`, while the
chaos suite exercises the same loop against real processes and real faults
(:mod:`repro.serving.faults`).
"""

from __future__ import annotations

import collections
import math
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union

from repro.serving.loadtest import (
    ReplicaProcess,
    ReplicaSpawnError,
    spawn_replica,
)
from repro.serving.proxy import RoundRobinProxy
from repro.serving.telemetry import FlightRecorder

__all__ = [
    "SupervisorPolicy",
    "ReplicaSlot",
    "FleetSupervisor",
    "REPLICA_STATES",
    "STARTING",
    "HEALTHY",
    "SUSPECT",
    "EJECTED",
    "DRAINING",
    "STOPPED",
    "CRASH_LOOPED",
]

STARTING = "starting"
HEALTHY = "healthy"
SUSPECT = "suspect"
EJECTED = "ejected"
DRAINING = "draining"
STOPPED = "stopped"
CRASH_LOOPED = "crash_looped"

#: Every state a replica slot can be in (the machine-readable vocabulary).
REPLICA_STATES = (STARTING, HEALTHY, SUSPECT, EJECTED, DRAINING, STOPPED,
                  CRASH_LOOPED)

#: States in which the slot owns a process the supervisor must watch.
_LIVE_STATES = frozenset({STARTING, HEALTHY, SUSPECT, EJECTED})


@dataclass
class SupervisorPolicy:
    """Tunable knobs of the control loop (all durations in seconds)."""

    #: Cadence of the health loop.
    health_interval_s: float = 1.0
    #: Timeout of one health probe (small: a SIGSTOP-ped replica accepts the
    #: TCP connect but never answers, and only this bound detects it).
    probe_timeout_s: float = 2.0
    #: Consecutive probe failures before a replica leaves the rotation.
    eject_after: int = 3
    #: Consecutive probe successes before an ejected replica is re-admitted.
    readmit_after: int = 2
    #: First restart delay after a crash; doubles per consecutive crash.
    backoff_base_s: float = 0.5
    #: Ceiling of the exponential backoff.
    backoff_max_s: float = 30.0
    #: Jitter fraction: the actual delay is ``backoff * (1 + jitter * u)``
    #: with ``u`` uniform in [0, 1) -- replicas that died together restart
    #: staggered.
    backoff_jitter: float = 0.25
    #: Crash events within the window that trip the circuit breaker.
    crash_loop_threshold: int = 3
    #: Width of the crash-loop detection window.
    crash_loop_window_s: float = 30.0
    #: How long a freshly (re)started replica may fail probes before it is
    #: treated as a failed start (killed and backed off).
    startup_grace_s: float = 30.0
    #: Drain bound on scale-in: SIGTERM, wait this long, then SIGKILL.
    drain_timeout_s: float = 15.0
    #: Reap bound after SIGKILL.
    kill_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.eject_after < 1 or self.readmit_after < 1:
            raise ValueError("eject_after and readmit_after must be >= 1")
        if self.crash_loop_threshold < 1:
            raise ValueError("crash_loop_threshold must be >= 1")
        if self.backoff_base_s <= 0 or self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                "need 0 < backoff_base_s <= backoff_max_s")
        if not (0.0 <= self.backoff_jitter <= 1.0):
            raise ValueError("backoff_jitter must be within [0, 1]")


class ReplicaSlot:
    """One position in the fleet and its state-machine bookkeeping."""

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.state = STARTING
        self.process: Optional[ReplicaProcess] = None
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.restarts = 0
        self.backoff_s = 0.0
        self.next_restart_at: Optional[float] = None
        self.crash_times: Deque[float] = collections.deque()
        self.last_transition_reason = "created"
        self.last_transition_at = 0.0
        self.state_since = 0.0
        self.last_exit: Optional[Dict[str, object]] = None

    @property
    def address(self) -> Optional[str]:
        return self.process.address if self.process is not None else None

    def info(self, now: float) -> Dict[str, object]:
        """JSON-serializable snapshot (the unit of ``fleet`` status output)."""
        process = self.process
        return {
            "slot": self.slot_id,
            "state": self.state,
            "address": self.address,
            "pid": process.pid if process is not None else None,
            "alive": bool(process is not None and process.alive),
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_successes": self.consecutive_successes,
            "state_age_s": round(max(0.0, now - self.state_since), 3),
            "last_transition_reason": self.last_transition_reason,
            "next_restart_in_s": (
                round(max(0.0, self.next_restart_at - now), 3)
                if self.next_restart_at is not None else None),
            "last_exit": self.last_exit,
        }


class FleetSupervisor:
    """Owns K replicas + the fronting proxy and keeps the fleet healthy.

    ``spawner`` (``() -> ReplicaProcess``), ``prober``
    (``(\"host:port\") -> bool``), ``clock`` (``() -> float``, monotonic) and
    ``jitter`` (``() -> float`` in [0, 1)) default to the real thing and are
    injectable for deterministic tests driven by manual :meth:`tick` calls.
    """

    def __init__(self, model_path: Union[str, Path, None] = None,
                 replicas: int = 1, *,
                 policy: Optional[SupervisorPolicy] = None,
                 host: str = "127.0.0.1",
                 proxy_host: str = "127.0.0.1", proxy_port: int = 0,
                 batch_window_ms: float = 2.0, max_batch_samples: int = 512,
                 backend_timeout_s: Optional[float] = None,
                 debug_hooks: bool = False,
                 spawner: Optional[Callable[[], ReplicaProcess]] = None,
                 prober: Optional[Callable[[str], bool]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 jitter: Optional[Callable[[], float]] = None,
                 recorder: Optional[FlightRecorder] = None) -> None:
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        if model_path is None and spawner is None:
            raise ValueError("need a model_path (or an injected spawner)")
        self.policy = policy or SupervisorPolicy()
        # The flight recorder is always on (the ring is cheap); pass one
        # with a sink to also persist every event as JSONL.
        self.recorder = recorder if recorder is not None \
            else FlightRecorder(capacity=2048)
        self.target_replicas = int(replicas)
        self._clock = clock
        if jitter is None:
            import random

            jitter = random.random
        self._jitter = jitter
        if spawner is None:
            spawner = lambda: spawn_replica(  # noqa: E731 - closure over args
                model_path, host=host,
                batch_window_ms=batch_window_ms,
                max_batch_samples=max_batch_samples,
                debug_hooks=debug_hooks)
        self._spawner = spawner
        if prober is None:
            prober = lambda address: RoundRobinProxy.probe(  # noqa: E731
                address, timeout_s=self.policy.probe_timeout_s)
        self._prober = prober
        # The probe timeout doubles as the proxy's per-read bound unless the
        # caller overrides it: a hung (SIGSTOP-ped) backend must fail fast so
        # the proxy's idempotent failover -- not the client -- absorbs it.
        # Scoring can outlast a probe, so leave generous room by default.
        self.proxy = RoundRobinProxy(
            [], host=proxy_host, port=proxy_port, allow_empty=True,
            backend_timeout_s=(backend_timeout_s if backend_timeout_s
                               is not None else 60.0))
        self._slots: Dict[int, ReplicaSlot] = {}
        self._next_slot_id = 0
        self._lock = threading.RLock()
        self._loop_stop = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._started = False

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "FleetSupervisor":
        """Start the proxy and spawn the initial fleet (no health loop yet)."""
        with self._lock:
            if self._started:
                raise RuntimeError("the supervisor is already started")
            self._started = True
            self.proxy.start()
            now = self._clock()
            for _ in range(self.target_replicas):
                self._add_slot(now)
        return self

    def start_health_loop(self) -> None:
        """Run :meth:`tick` every ``health_interval_s`` in a daemon thread."""
        if self._loop_thread is not None:
            return
        self._loop_stop.clear()
        self._loop_thread = threading.Thread(
            target=self._health_loop, name="fleet-supervisor", daemon=True)
        self._loop_thread.start()

    def _health_loop(self) -> None:
        while not self._loop_stop.wait(self.policy.health_interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - the loop must survive
                pass

    def close(self) -> List[int]:
        """Stop the loop, drain every replica gracefully, close the proxy."""
        self._loop_stop.set()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
            self._loop_thread = None
        exit_codes: List[int] = []
        with self._lock:
            for slot in list(self._slots.values()):
                if slot.process is not None and slot.state in _LIVE_STATES:
                    exit_codes.append(self._drain_slot(slot, "fleet shutdown"))
        self.proxy.close()
        self.recorder.record("fleet_shutdown", exit_codes=exit_codes)
        self.recorder.close()
        return exit_codes

    def __enter__(self) -> "FleetSupervisor":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- observation
    def status(self) -> Dict[str, object]:
        """Machine-readable fleet snapshot (what ``fleet`` prints as JSON).

        Each slot carries live ``rps``/``p50_ms``/``p95_ms`` from the
        proxy's windowed per-backend stats (None while out of rotation or
        before any traffic) -- the inputs live autoscaling needs.
        """
        with self._lock:
            now = self._clock()
            slots = [slot.info(now)
                     for slot in sorted(self._slots.values(),
                                        key=lambda s: s.slot_id)]
            states = [str(info["state"]) for info in slots]
            try:
                proxy_address = "%s:%d" % self.proxy.address
            except Exception:
                proxy_address = None
            backend_stats = self.proxy.backend_stats()
            for info in slots:
                stats = backend_stats.get(info["address"]) \
                    if info["address"] else None
                info["rps"] = stats["rps"] if stats else None
                info["p50_ms"] = stats["p50_ms"] if stats else None
                info["p95_ms"] = stats["p95_ms"] if stats else None
            return {
                "target_replicas": self.target_replicas,
                "healthy": sum(1 for s in states if s == HEALTHY),
                "states": dict(collections.Counter(states)),
                "proxy": {
                    "address": proxy_address,
                    "backends": self.proxy.backend_addresses(),
                    "request_counts": self.proxy.request_counts(),
                    "backend_stats": backend_stats,
                },
                "slots": slots,
            }

    def events(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The flight recorder's retained events, oldest first."""
        return self.recorder.events(limit)

    def healthy_count(self) -> int:
        with self._lock:
            return sum(1 for slot in self._slots.values()
                       if slot.state == HEALTHY)

    def wait_for_healthy(self, count: Optional[int] = None,
                         timeout_s: float = 60.0,
                         poll_s: float = 0.25) -> bool:
        """Block until ``count`` replicas are healthy (requires the loop)."""
        goal = self.target_replicas if count is None else int(count)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.healthy_count() >= goal:
                return True
            time.sleep(poll_s)
        return self.healthy_count() >= goal

    # ------------------------------------------------------------- health logic
    def tick(self) -> None:
        """One pass of the control loop over every slot."""
        with self._lock:
            now = self._clock()
            for slot in list(self._slots.values()):
                self._tick_slot(slot, now)

    def _tick_slot(self, slot: ReplicaSlot, now: float) -> None:
        if slot.state not in _LIVE_STATES:
            return
        process = slot.process
        if process is None:
            # Crashed and reaped: waiting out the backoff, then respawn.
            if (slot.state == EJECTED and slot.next_restart_at is not None
                    and now >= slot.next_restart_at):
                self._respawn(slot, now)
            return
        # Process liveness first: a dead process can never probe healthy, and
        # its exit code + stderr tail are the diagnosis.
        if process.poll() is not None:
            self._on_death(slot, now)
            return
        healthy = self._prober(process.address)
        if healthy:
            slot.consecutive_failures = 0
            slot.consecutive_successes += 1
            if slot.state == SUSPECT:
                self._transition(slot, HEALTHY, "probe recovered", now)
            elif slot.state == STARTING:
                self._admit(slot, "startup probe succeeded", now)
            elif (slot.state == EJECTED
                  and slot.consecutive_successes >= self.policy.readmit_after):
                self._admit(
                    slot,
                    f"{slot.consecutive_successes} consecutive probe "
                    f"successes", now)
            return
        slot.consecutive_successes = 0
        slot.consecutive_failures += 1
        if slot.state == STARTING:
            if now - slot.state_since > self.policy.startup_grace_s:
                # Up but never became probeable: treat as a failed start.
                process.kill()
                self._on_death(slot, now, reason="startup grace exceeded")
            return
        if slot.state == HEALTHY:
            self._transition(
                slot, SUSPECT,
                f"probe failed ({slot.consecutive_failures}x)", now)
            return
        if (slot.state == SUSPECT
                and slot.consecutive_failures >= self.policy.eject_after):
            self.proxy.remove_backend(process.address)
            self._transition(
                slot, EJECTED,
                f"{slot.consecutive_failures} consecutive probe failures",
                now)

    # ------------------------------------------------------------ state changes
    def _transition(self, slot: ReplicaSlot, state: str, reason: str,
                    now: float) -> None:
        # Single funnel for every state change -- which makes it the one
        # place the flight recorder needs a hook to see the whole machine.
        self.recorder.record(
            "transition", slot=slot.slot_id, from_state=slot.state,
            to_state=state, reason=reason, address=slot.address)
        slot.state = state
        slot.last_transition_reason = reason
        slot.last_transition_at = now
        slot.state_since = now

    def _admit(self, slot: ReplicaSlot, reason: str, now: float) -> None:
        assert slot.process is not None
        self.proxy.add_backend(slot.process.address)
        slot.consecutive_failures = 0
        slot.backoff_s = 0.0  # a healthy run resets the exponential backoff
        slot.next_restart_at = None
        self._transition(slot, HEALTHY, reason, now)

    def _on_death(self, slot: ReplicaSlot, now: float,
                  reason: Optional[str] = None) -> None:
        process = slot.process
        if process is not None:
            if self.proxy.has_backend(process.address):
                self.proxy.remove_backend(process.address)
            slot.last_exit = process.exit_summary()
            process.close(term_timeout_s=0.0,
                          kill_timeout_s=self.policy.kill_timeout_s)
            slot.process = None
        exit_code = (slot.last_exit or {}).get("exit_code")
        self._record_crash(
            slot, now,
            reason or f"process exited (code {exit_code})")

    def _record_crash(self, slot: ReplicaSlot, now: float,
                      reason: str) -> None:
        """Schedule a backed-off restart, or park the slot if crash-looping."""
        slot.consecutive_failures = 0
        slot.consecutive_successes = 0
        slot.crash_times.append(now)
        window_start = now - self.policy.crash_loop_window_s
        while slot.crash_times and slot.crash_times[0] < window_start:
            slot.crash_times.popleft()
        if len(slot.crash_times) >= self.policy.crash_loop_threshold:
            slot.next_restart_at = None
            self._transition(
                slot, CRASH_LOOPED,
                f"{len(slot.crash_times)} crashes within "
                f"{self.policy.crash_loop_window_s:.0f}s "
                f"(last: {reason}); parked", now)
            return
        slot.backoff_s = (self.policy.backoff_base_s if slot.backoff_s <= 0
                          else min(self.policy.backoff_max_s,
                                   slot.backoff_s * 2))
        delay = slot.backoff_s * (1.0
                                  + self.policy.backoff_jitter * self._jitter())
        slot.next_restart_at = now + delay
        self._transition(
            slot, EJECTED,
            f"{reason}; restart in {delay:.2f}s (backoff)", now)

    def _respawn(self, slot: ReplicaSlot, now: float) -> None:
        slot.next_restart_at = None
        try:
            process = self._spawner()
        except ReplicaSpawnError as error:
            slot.last_exit = {"exit_code": error.exit_code,
                              "stderr_tail": error.stderr_tail}
            kind = ("crashed on boot" if error.exit_code is not None
                    else "failed to start")
            self.recorder.record("spawn_failed", slot=slot.slot_id,
                                 exit_code=error.exit_code)
            self._record_crash(slot, now, f"respawn {kind}: {error}")
            return
        slot.process = process
        slot.restarts += 1
        self.recorder.record("spawn", slot=slot.slot_id,
                             address=process.address, pid=process.pid,
                             attempt=slot.restarts)
        self._transition(slot, STARTING,
                         f"restarted (attempt {slot.restarts})", now)

    def _add_slot(self, now: float) -> ReplicaSlot:
        slot = ReplicaSlot(self._next_slot_id)
        self._next_slot_id += 1
        self._slots[slot.slot_id] = slot
        slot.state_since = now
        self._respawn(slot, now)
        if slot.restarts:  # _respawn counts every spawn; the first is free
            slot.restarts -= 1
            slot.last_transition_reason = "initial start"
        return slot

    def _drain_slot(self, slot: ReplicaSlot, reason: str) -> int:
        """Remove from rotation, SIGTERM, bounded wait, SIGKILL; reap."""
        process = slot.process
        assert process is not None
        now = self._clock()
        self._transition(slot, DRAINING, reason, now)
        self.proxy.remove_backend(process.address)
        # ReplicaProcess.close IS the drain: SIGTERM triggers the server's
        # drain path (503 + Retry-After for new arrivals, wait_idle for
        # in-flight), SIGKILL only fires after the bounded wait.
        exit_code = process.close(
            term_timeout_s=self.policy.drain_timeout_s,
            kill_timeout_s=self.policy.kill_timeout_s)
        slot.last_exit = {"exit_code": exit_code, "stderr_tail": ""}
        slot.process = None
        self._transition(slot, STOPPED, f"drained ({reason})", self._clock())
        return exit_code

    # ----------------------------------------------------------------- scaling
    def scale_to(self, replicas: int) -> None:
        """Grow or shrink the fleet to ``replicas`` slots.

        Scale-in drains the victims gracefully (unhealthy slots are picked
        first, then the youngest); scale-out adds fresh slots immediately.
        """
        if replicas < 0:
            raise ValueError("cannot scale below zero replicas")
        with self._lock:
            now = self._clock()
            self.target_replicas = int(replicas)
            active = [slot for slot in self._slots.values()
                      if slot.state in _LIVE_STATES]
            surplus = len(active) - replicas
            if surplus > 0:
                # Drain unhealthy first (losing them costs nothing), then the
                # newest healthy replicas (oldest have the warmest caches).
                victims = sorted(
                    active,
                    key=lambda s: (s.state == HEALTHY, -s.slot_id))[:surplus]
                for slot in victims:
                    if slot.process is not None:
                        self._drain_slot(slot, "scale-in")
                    else:
                        self._transition(slot, STOPPED, "scale-in", now)
                        slot.next_restart_at = None
            else:
                for _ in range(-surplus):
                    self._add_slot(now)

    def autoscale_to_target(self, target_rps: float,
                            per_replica_rps: float,
                            max_replicas: int = 16) -> int:
        """Size the fleet for a target load; returns the chosen replica count.

        ``per_replica_rps`` is the measured single-replica capacity (the
        loadtest harness's saturation knee is exactly this number).
        """
        if target_rps <= 0 or per_replica_rps <= 0:
            raise ValueError("target_rps and per_replica_rps must be > 0")
        needed = max(1, min(int(max_replicas),
                            math.ceil(target_rps / per_replica_rps)))
        self.scale_to(needed)
        return needed

    def revive(self, slot_id: int) -> None:
        """Un-park a ``crash_looped`` slot: reset the breaker and respawn."""
        with self._lock:
            slot = self._slots.get(slot_id)
            if slot is None:
                raise KeyError(f"no slot {slot_id}")
            if slot.state != CRASH_LOOPED:
                raise ValueError(
                    f"slot {slot_id} is {slot.state}, not {CRASH_LOOPED}")
            slot.crash_times.clear()
            slot.backoff_s = 0.0
            self._respawn(slot, self._clock())
