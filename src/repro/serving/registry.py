"""Multi-model registry: several loaded artifacts, one compiler cache.

:class:`ModelRegistry` is the process-wide table of served models.  Each
entry pairs a loaded :class:`~repro.serving.artifact.ModelArtifact` with a
live :class:`~repro.serving.scorer.OnlineScorer`, keyed by a **model id**
(caller-chosen, or derived from the artifact's canonical sha256) and
resolvable by the full sha256 as well.

Every scorer the registry builds shares ONE :class:`CircuitCompiler`: the
compiled-program LRU is keyed by (circuit signature, noise fingerprint,
backend dtype), so two registered artifacts that share members -- e.g. the
same bundle loaded under two ids, or a replica fleet's common model -- reuse
each other's compiled encoders and suffix observables.  The registry's
``diagnostics`` exposes the shared cache counters so tests (and operators)
can prove the reuse.

All mutating and reading methods are lock-protected; entries are handed out
as :class:`RegisteredModel` references whose scorers are themselves
thread-safe.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.quantum.compiler import CircuitCompiler, default_compiler
from repro.serving.artifact import ArtifactError, ModelArtifact, load_model
from repro.serving.models import ApiError, ModelInfo
from repro.serving.scorer import OnlineScorer

__all__ = ["RegisteredModel", "ModelRegistry"]

#: Leading hex digits of the canonical sha256 used as a derived model id.
ID_DIGEST_CHARS = 12


@dataclass
class RegisteredModel:
    """One served model: artifact + live scorer + identity metadata."""

    model_id: str
    sha256: str
    artifact: ModelArtifact
    scorer: OnlineScorer
    path: Optional[str] = None
    loaded_at: float = field(default_factory=time.time)

    def info(self, is_default: bool = False) -> ModelInfo:
        return ModelInfo(
            model_id=self.model_id,
            sha256=self.sha256,
            path=self.path,
            loaded_at=self.loaded_at,
            is_default=is_default,
            summary=self.artifact.summary(),
        )


class ModelRegistry:
    """Thread-safe table of loaded models sharing one compiler cache.

    Parameters
    ----------
    compiler:
        The compiled-program cache every scorer uses; defaults to the
        process-wide shared instance.  Tests pass a private compiler so the
        hit/miss counters can be asserted in isolation.
    scorer_kwargs:
        Extra keyword arguments applied to every :class:`OnlineScorer` the
        registry builds (batching knobs from the CLI).
    clock:
        Injectable time source for ``loaded_at`` stamps (tests).
    """

    def __init__(self, compiler: Optional[CircuitCompiler] = None,
                 scorer_kwargs: Optional[dict] = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.compiler = compiler if compiler is not None else default_compiler()
        self._scorer_kwargs = dict(scorer_kwargs or {})
        self._clock = clock
        self._lock = threading.RLock()
        self._models: "OrderedDict[str, RegisteredModel]" = OrderedDict()
        self._closed = False

    # ----------------------------------------------------------------- loading
    def load(self, path: Union[str, Path],
             model_id: Optional[str] = None) -> RegisteredModel:
        """Load an artifact bundle from ``path`` and register it.

        Raises ``ApiError(bad_request)`` when the bundle fails validation and
        ``ApiError(model_exists)`` when ``model_id`` is already taken by a
        *different* artifact.  Re-loading identical content under the same
        (or derived) id is idempotent and returns the existing entry.
        """
        try:
            artifact = load_model(path)
        except ArtifactError as error:
            raise ApiError("bad_request",
                           f"cannot load model artifact: {error}",
                           detail={"path": str(path)}) from None
        return self.register(artifact, model_id=model_id, path=str(path))

    def register(self, artifact: ModelArtifact,
                 model_id: Optional[str] = None,
                 path: Optional[str] = None) -> RegisteredModel:
        """Register an in-memory artifact (the fit-as-a-job entry point)."""
        sha256 = artifact.content_sha256()
        with self._lock:
            if self._closed:
                raise ApiError("shutting_down", "the registry is closed")
            resolved_id = model_id or sha256[:ID_DIGEST_CHARS]
            existing = self._models.get(resolved_id)
            if existing is not None:
                if existing.sha256 == sha256:
                    return existing  # idempotent re-load of identical content
                raise ApiError(
                    "model_exists",
                    f"model id {resolved_id!r} is already registered with "
                    f"different content",
                    detail={"model_id": resolved_id,
                            "registered_sha256": existing.sha256,
                            "offered_sha256": sha256},
                )
            scorer = OnlineScorer(artifact, compiler=self.compiler,
                                  **self._scorer_kwargs)
            entry = RegisteredModel(model_id=resolved_id, sha256=sha256,
                                    artifact=artifact, scorer=scorer,
                                    path=path, loaded_at=self._clock())
            self._models[resolved_id] = entry
            return entry

    def adopt_scorer(self, scorer: OnlineScorer,
                     model_id: Optional[str] = None,
                     path: Optional[str] = None) -> RegisteredModel:
        """Register a prebuilt scorer (keeps its compiler/batching setup).

        Back-compat path for callers that construct an :class:`OnlineScorer`
        themselves; the scorer's compiler may differ from the registry's.
        """
        sha256 = scorer.artifact.content_sha256()
        with self._lock:
            if self._closed:
                raise ApiError("shutting_down", "the registry is closed")
            resolved_id = model_id or sha256[:ID_DIGEST_CHARS]
            if resolved_id in self._models:
                raise ApiError("model_exists",
                               f"model id {resolved_id!r} is already "
                               "registered",
                               detail={"model_id": resolved_id})
            entry = RegisteredModel(model_id=resolved_id, sha256=sha256,
                                    artifact=scorer.artifact, scorer=scorer,
                                    path=path, loaded_at=self._clock())
            self._models[resolved_id] = entry
            return entry

    def unload(self, model_id: str) -> RegisteredModel:
        """Remove a model and close its scorer (in-flight requests finish)."""
        with self._lock:
            entry = self._resolve(model_id)
            del self._models[entry.model_id]
        entry.scorer.close()
        return entry

    # ---------------------------------------------------------------- lookups
    def _resolve(self, key: Optional[str]) -> RegisteredModel:
        """Entry for an id or full sha256; ``None`` means the default model."""
        if key is None:
            if not self._models:
                raise ApiError("model_not_found", "no model is loaded")
            return next(iter(self._models.values()))
        entry = self._models.get(key)
        if entry is not None:
            return entry
        for candidate in self._models.values():
            if candidate.sha256 == key:
                return candidate
        raise ApiError("model_not_found", f"no model with id {key!r}",
                       detail={"model_id": key,
                               "loaded": list(self._models)})

    def get(self, model_id: Optional[str] = None) -> RegisteredModel:
        """Entry by id/sha256 (``None`` -> the default: first loaded model)."""
        with self._lock:
            return self._resolve(model_id)

    def default_id(self) -> Optional[str]:
        with self._lock:
            return next(iter(self._models), None)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def list(self) -> List[RegisteredModel]:
        with self._lock:
            return list(self._models.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # ------------------------------------------------------------ diagnostics
    def diagnostics(self) -> Dict[str, object]:
        """Registry-wide view incl. the shared compiler-cache counters."""
        stats = self.compiler.stats
        with self._lock:
            models = [entry.info(is_default=(index == 0)).to_json()
                      for index, entry in enumerate(self._models.values())]
        return {
            "models": models,
            "compiler_cache": {
                "compiles": stats.compiles,
                "group_compiles": stats.group_compiles,
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": self.compiler.cache_size(),
                "bytes": self.compiler.cache_bytes(),
            },
        }

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close every scorer; subsequent loads raise ``shutting_down``."""
        with self._lock:
            self._closed = True
            entries = list(self._models.values())
            self._models.clear()
        for entry in entries:
            entry.scorer.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
