"""Round-robin HTTP proxy fanning requests across replica ``serve`` processes.

The model artifact bundle is exactly the state a shared-nothing replica fleet
needs: every ``quorum-repro serve`` process loads the same frozen artifact and
answers identically (replay mode bitwise), so a fleet of K replicas behind a
request-level round-robin proxy scales reference-mode throughput without any
coordination between processes.

:class:`RoundRobinProxy` is that proxy, stdlib-only and deliberately tiny:

* **request-level** balancing -- each HTTP request on a client connection is
  forwarded to the next backend in rotation (not connection-level pinning),
  so even one keep-alive load generator exercises every replica;
* per-backend **request counters** (the loadtest harness reads them to report
  per-replica distribution);
* **health checks** via ``HEAD /v1/healthz`` (what real load balancers send;
  the server grew ``do_HEAD`` support for exactly this);
* **failover** -- a backend that refuses or drops a connection is retried on
  the next replica in rotation; only when every backend fails does the client
  see a synthesized ``502`` with the standard error envelope.

Framing relies on the invariant the server upholds: every response carries a
``Content-Length`` (no chunked encoding).  Responses without one are streamed
until backend EOF and the connection pair is closed.

The proxy is embeddable (the ``loadtest`` harness runs it in-process so the
counters are directly readable) and usable standalone::

    proxy = RoundRobinProxy([(host1, port1), (host2, port2)]).start()
    ... point clients at proxy.base_url ...
    proxy.close()
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["RoundRobinProxy", "ProxyError"]

#: Upper bound on one request/response head (status line + headers).
MAX_HEAD_BYTES = 64 * 1024

#: Socket timeout for backend connects and reads; generous because scoring a
#: large coalesced batch can legitimately take a while.
BACKEND_TIMEOUT_S = 300.0

#: Synthesized when every backend fails for one request (proxy-level code;
#: the server-side codes live in repro.serving.models.ERROR_STATUS).
_BAD_GATEWAY_CODE = "bad_gateway"


class ProxyError(RuntimeError):
    """Lifecycle errors of the proxy itself (bad backend spec, double start)."""


def _parse_backend(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    text = spec
    if "//" in text:  # accept http://host:port URLs as written by `serve`
        text = text.split("//", 1)[1]
    host, separator, port = text.rstrip("/").rpartition(":")
    if not separator or not port.isdigit():
        raise ProxyError(f"backend spec {spec!r} is not host:port")
    return host, int(port)


class _SocketReader:
    """Minimal buffered reader over a socket (head + exact-length bodies)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def read_head(self) -> Optional[bytes]:
        """One message head up to and including the blank line.

        Returns ``None`` on clean EOF before any byte (client done with the
        connection); raises :class:`ConnectionError` on EOF mid-head.
        """
        while b"\r\n\r\n" not in self._buffer:
            if len(self._buffer) > MAX_HEAD_BYTES:
                raise ConnectionError("message head exceeds the size bound")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ConnectionError("EOF inside a message head")
                return None
            self._buffer += chunk
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        return head + b"\r\n\r\n"

    def read_exact(self, length: int) -> bytes:
        """Exactly ``length`` body bytes; raises ConnectionError on EOF."""
        while len(self._buffer) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    f"EOF after {len(self._buffer)} of {length} body bytes")
            self._buffer += chunk
        body, self._buffer = self._buffer[:length], self._buffer[length:]
        return body

    def read_to_eof(self) -> bytes:
        chunks = [self._buffer]
        self._buffer = b""
        while True:
            chunk = self._sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def _parse_head(head: bytes) -> Tuple[str, Dict[str, str]]:
    """``(first_line, {lowercase header: value})`` from a raw head."""
    lines = head.decode("latin-1").split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if separator:
            headers[name.strip().lower()] = value.strip()
    return lines[0], headers


def _content_length(headers: Dict[str, str]) -> Optional[int]:
    value = headers.get("content-length")
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        raise ConnectionError(f"unparsable Content-Length {value!r}")


class _Backend:
    """One replica: address, health, and a served-request counter."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.requests = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self, timeout_s: float) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock


class RoundRobinProxy:
    """Request-level round-robin HTTP proxy over a fixed backend list."""

    def __init__(self, backends: Sequence[Union[str, Tuple[str, int]]],
                 host: str = "127.0.0.1", port: int = 0,
                 backend_timeout_s: float = BACKEND_TIMEOUT_S) -> None:
        if not backends:
            raise ProxyError("a proxy needs at least one backend")
        self._backends = [_Backend(*_parse_backend(spec)) for spec in backends]
        self._listen_host = host
        self._listen_port = port
        self._backend_timeout_s = float(backend_timeout_s)
        self._rotation = 0
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    # --------------------------------------------------------------- lifecycle
    def start(self) -> "RoundRobinProxy":
        if self._listener is not None:
            raise ProxyError("the proxy is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._listen_host, self._listen_port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="quorum-proxy", daemon=True)
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise ProxyError("the proxy is not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "RoundRobinProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- observation
    def request_counts(self) -> Dict[str, int]:
        """``{"host:port": requests proxied}`` per backend (monotonic)."""
        with self._lock:
            return {backend.address: backend.requests
                    for backend in self._backends}

    def backend_addresses(self) -> List[str]:
        return [backend.address for backend in self._backends]

    def check_backends(self, timeout_s: float = 5.0) -> Dict[str, bool]:
        """``HEAD /v1/healthz`` against every backend -> liveness map."""
        results: Dict[str, bool] = {}
        for backend in self._backends:
            results[backend.address] = self._probe(backend, timeout_s)
        return results

    @staticmethod
    def _probe(backend: _Backend, timeout_s: float) -> bool:
        probe = (f"HEAD /v1/healthz HTTP/1.1\r\n"
                 f"Host: {backend.address}\r\n"
                 f"Connection: close\r\n\r\n").encode("latin-1")
        try:
            with socket.create_connection((backend.host, backend.port),
                                          timeout=timeout_s) as sock:
                sock.sendall(probe)
                head = _SocketReader(sock).read_head()
        except OSError:
            return False
        if head is None:
            return False
        status_line, _ = _parse_head(head)
        parts = status_line.split()
        return len(parts) >= 2 and parts[1] == "200"

    # -------------------------------------------------------------- data plane
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_client, args=(client,),
                             daemon=True).start()

    def _next_rotation(self) -> int:
        with self._lock:
            index = self._rotation
            self._rotation = (self._rotation + 1) % len(self._backends)
            return index

    def _serve_client(self, client: socket.socket) -> None:
        client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = _SocketReader(client)
        # One persistent connection per backend, owned by this client thread
        # (request-level rotation would otherwise interleave two clients'
        # requests on one backend socket).
        connections: Dict[int, Tuple[socket.socket, _SocketReader]] = {}
        try:
            while not self._closed.is_set():
                try:
                    head = reader.read_head()
                except (ConnectionError, OSError):
                    return
                if head is None:
                    return
                request_line, headers = _parse_head(head)
                method = request_line.split(" ", 1)[0].upper()
                try:
                    length = _content_length(headers) or 0
                    body = reader.read_exact(length) if length else b""
                except (ConnectionError, OSError):
                    return  # client died mid-body; nothing to answer
                keep_alive = self._forward(client, connections, method,
                                           head, body)
                client_closing = (headers.get("connection", "").lower()
                                  == "close"
                                  or request_line.endswith("HTTP/1.0"))
                if client_closing or not keep_alive:
                    return
        finally:
            for sock, _ in connections.values():
                try:
                    sock.close()
                except OSError:
                    pass
            try:
                client.close()
            except OSError:
                pass

    def _forward(self, client: socket.socket,
                 connections: Dict[int, Tuple[socket.socket, _SocketReader]],
                 method: str, head: bytes, body: bytes) -> bool:
        """Proxy one request; returns False when the client pair must close."""
        start = self._next_rotation()
        for offset in range(len(self._backends)):
            index = (start + offset) % len(self._backends)
            backend = self._backends[index]
            # A pooled connection may have been closed by the backend since
            # its last use; retry such a failure once on a fresh socket
            # before moving to the next replica.
            for _attempt in range(2):
                try:
                    if index not in connections:
                        sock = backend.connect(self._backend_timeout_s)
                        connections[index] = (sock, _SocketReader(sock))
                    sock, backend_reader = connections[index]
                    sock.sendall(head + body)
                    response, backend_alive = self._read_response(
                        backend_reader, method)
                except (OSError, ConnectionError):
                    self._drop(connections, index)
                    continue
                if not backend_alive:
                    self._drop(connections, index)
                with self._lock:
                    backend.requests += 1
                try:
                    client.sendall(response)
                except OSError:
                    return False  # client went away; stop this pair
                return True
        return self._send_bad_gateway(client, method)

    @staticmethod
    def _drop(connections: Dict[int, Tuple[socket.socket, _SocketReader]],
              index: int) -> None:
        entry = connections.pop(index, None)
        if entry is not None:
            try:
                entry[0].close()
            except OSError:
                pass

    @staticmethod
    def _read_response(reader: _SocketReader, method: str
                       ) -> Tuple[bytes, bool]:
        """One full response off a backend; ``(bytes, backend reusable?)``."""
        head = reader.read_head()
        if head is None:
            raise ConnectionError("backend closed before responding")
        status_line, headers = _parse_head(head)
        length = _content_length(headers)
        status = status_line.split()
        code = int(status[1]) if len(status) >= 2 and status[1].isdigit() else 0
        # HEAD responses and 1xx/204/304 carry headers only, regardless of
        # the Content-Length the server advertises for parity with GET.
        if method == "HEAD" or code < 200 or code in (204, 304):
            body = b""
        elif length is None:
            # No framing information: stream until EOF, then retire the pair.
            return head + reader.read_to_eof(), False
        else:
            body = reader.read_exact(length)
        reusable = (headers.get("connection", "").lower() != "close"
                    and not status_line.startswith("HTTP/1.0"))
        return head + body, reusable

    def _send_bad_gateway(self, client: socket.socket, method: str) -> bool:
        payload = json.dumps({"error": {
            "code": _BAD_GATEWAY_CODE,
            "message": "no backend replica accepted the request",
            "detail": {"backends": self.backend_addresses()},
        }}).encode("utf-8")
        head = ("HTTP/1.1 502 Bad Gateway\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        try:
            client.sendall(head + (b"" if method == "HEAD" else payload))
        except OSError:
            pass
        return False
