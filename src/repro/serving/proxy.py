"""Round-robin HTTP proxy fanning requests across replica ``serve`` processes.

The model artifact bundle is exactly the state a shared-nothing replica fleet
needs: every ``quorum-repro serve`` process loads the same frozen artifact and
answers identically (replay mode bitwise), so a fleet of K replicas behind a
request-level round-robin proxy scales reference-mode throughput without any
coordination between processes.

:class:`RoundRobinProxy` is that proxy, stdlib-only and deliberately tiny:

* **request-level** balancing -- each HTTP request on a client connection is
  forwarded to the next backend in rotation (not connection-level pinning),
  so even one keep-alive load generator exercises every replica;
* **dynamic membership** -- :meth:`add_backend` / :meth:`remove_backend`
  mutate the rotation under the lock, so a supervisor can eject unhealthy
  replicas and re-admit recovered ones without restarting the proxy.  A
  removed backend's pooled connections are closed; requests already in
  flight to it complete normally;
* per-backend **request counters** (the loadtest harness reads them to report
  per-replica distribution; counters survive removal so history is stable)
  plus windowed per-backend **latency/error stats** (:meth:`backend_stats`:
  live RPS, p50/p95 -- what the fleet supervisor surfaces in its status JSON
  and what live autoscaling will consume);
* **request tracing** -- a request arriving without an ``X-Request-Id``
  header gets one minted before forwarding, so every hop of a trace shares
  one id; a client that sent ``X-Timing`` also gets an ``X-Proxy-Timing``
  response header with the proxy's own elapsed span;
* **health checks** via ``HEAD /v1/healthz`` (what real load balancers send;
  the server grew ``do_HEAD`` support for exactly this) -- both over the
  current membership (:meth:`check_backends`) and against an arbitrary
  address (:meth:`probe`, what the fleet supervisor uses for ejected
  replicas that are not in rotation);
* **bounded failover** -- *idempotent* requests (GET/HEAD) that hit a
  refused, dropped, or mid-response-dead backend are retried against the
  next backend in rotation within a bounded retry budget.  Non-idempotent
  requests (POST/DELETE/...) are **never** replayed after a connection
  failure -- the backend may already have executed them -- and surface a
  synthesized ``502`` instead.  The one exception for every method is a
  backend answering ``503 shutting_down``: that response proves the request
  was *not* executed, so the proxy transparently moves it to the next
  backend (this is what makes supervisor-driven drain invisible to
  clients).  A stale pooled connection (closed by the backend between
  keep-alive requests) is always retried once on a fresh socket to the same
  backend before counting as a failure.

When the rotation is empty (every backend ejected) the proxy answers
``503 no_healthy_backends`` with a ``Retry-After`` header -- distinct from
``502 bad_gateway``, which means backends existed but none could serve the
request.

Framing relies on the invariant the server upholds: every response carries a
``Content-Length`` (no chunked encoding).  Responses without one are streamed
until backend EOF and the connection pair is closed.

The proxy is embeddable (the ``loadtest`` harness and the fleet supervisor
run it in-process so the counters are directly readable) and usable
standalone::

    proxy = RoundRobinProxy([(host1, port1), (host2, port2)]).start()
    ... point clients at proxy.base_url ...
    proxy.add_backend((host3, port3))
    proxy.remove_backend((host1, port1))
    proxy.close()
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.serving.telemetry import new_request_id, percentile

__all__ = ["RoundRobinProxy", "ProxyError"]

#: Upper bound on one request/response head (status line + headers).
MAX_HEAD_BYTES = 64 * 1024

#: Socket timeout for backend connects and reads; generous because scoring a
#: large coalesced batch can legitimately take a while.
BACKEND_TIMEOUT_S = 300.0

#: How many *additional* backends an idempotent request may be retried
#: against after its first pick fails (the bounded retry budget).
DEFAULT_RETRY_BUDGET = 2

#: Methods that are safe to replay against another backend after a
#: connection-level failure.
_IDEMPOTENT_METHODS = frozenset({"GET", "HEAD"})

#: Synthesized when every backend fails for one request (proxy-level code;
#: the server-side codes live in repro.serving.models.ERROR_STATUS).
_BAD_GATEWAY_CODE = "bad_gateway"

#: Synthesized when the rotation is empty (every backend ejected).
_NO_BACKENDS_CODE = "no_healthy_backends"

#: Marker of a drain response body; the server's envelope always carries the
#: stable code, so a substring check avoids parsing JSON on the hot path.
_DRAINING_MARKER = b'"shutting_down"'

#: Default sliding window :meth:`RoundRobinProxy.backend_stats` evaluates
#: RPS and latency percentiles over.
STATS_WINDOW_S = 60.0

#: Completion timestamps/latencies retained per backend for the stats
#: window (bounds memory; at fleet throughputs this covers the window).
_LATENCY_KEEP = 4096


class ProxyError(RuntimeError):
    """Lifecycle errors of the proxy itself (bad backend spec, double start)."""


def _parse_backend(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    text = spec
    if "//" in text:  # accept http://host:port URLs as written by `serve`
        text = text.split("//", 1)[1]
    host, separator, port = text.rstrip("/").rpartition(":")
    if not separator or not port.isdigit():
        raise ProxyError(f"backend spec {spec!r} is not host:port")
    return host, int(port)


class _SocketReader:
    """Minimal buffered reader over a socket (head + exact-length bodies)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def read_head(self) -> Optional[bytes]:
        """One message head up to and including the blank line.

        Returns ``None`` on clean EOF before any byte (client done with the
        connection); raises :class:`ConnectionError` on EOF mid-head.
        """
        while b"\r\n\r\n" not in self._buffer:
            if len(self._buffer) > MAX_HEAD_BYTES:
                raise ConnectionError("message head exceeds the size bound")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ConnectionError("EOF inside a message head")
                return None
            self._buffer += chunk
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        return head + b"\r\n\r\n"

    def read_exact(self, length: int) -> bytes:
        """Exactly ``length`` body bytes; raises ConnectionError on EOF."""
        while len(self._buffer) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    f"EOF after {len(self._buffer)} of {length} body bytes")
            self._buffer += chunk
        body, self._buffer = self._buffer[:length], self._buffer[length:]
        return body

    def read_to_eof(self) -> bytes:
        chunks = [self._buffer]
        self._buffer = b""
        while True:
            chunk = self._sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def _parse_head(head: bytes) -> Tuple[str, Dict[str, str]]:
    """``(first_line, {lowercase header: value})`` from a raw head."""
    lines = head.decode("latin-1").split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if separator:
            headers[name.strip().lower()] = value.strip()
    return lines[0], headers


def _content_length(headers: Dict[str, str]) -> Optional[int]:
    value = headers.get("content-length")
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        raise ConnectionError(f"unparsable Content-Length {value!r}")


class _Backend:
    """One replica: its address and connect helper."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self, timeout_s: float) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock


#: One client thread's connection pool: ``address -> (socket, reader)``.
_Pool = Dict[str, Tuple[socket.socket, _SocketReader]]


class RoundRobinProxy:
    """Request-level round-robin HTTP proxy with dynamic backend membership."""

    def __init__(self, backends: Sequence[Union[str, Tuple[str, int]]],
                 host: str = "127.0.0.1", port: int = 0,
                 backend_timeout_s: float = BACKEND_TIMEOUT_S,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 allow_empty: bool = False) -> None:
        if not backends and not allow_empty:
            raise ProxyError("a proxy needs at least one backend")
        if retry_budget < 0:
            raise ProxyError("retry_budget cannot be negative")
        self._backends = [_Backend(*_parse_backend(spec)) for spec in backends]
        seen = {backend.address for backend in self._backends}
        if len(seen) != len(self._backends):
            raise ProxyError("duplicate backend addresses in the initial list")
        self._counts: Dict[str, int] = {address: 0 for address in seen}
        self._errors: Dict[str, int] = {}
        # Per-backend (completion monotonic time, latency s) samples backing
        # backend_stats(); bounded so a long-lived proxy cannot grow.
        self._latencies: Dict[str, Deque[Tuple[float, float]]] = {}
        self._started_mono = time.monotonic()
        self._listen_host = host
        self._listen_port = port
        self._backend_timeout_s = float(backend_timeout_s)
        self._retry_budget = int(retry_budget)
        self._rotation = 0
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    # --------------------------------------------------------------- lifecycle
    def start(self) -> "RoundRobinProxy":
        if self._listener is not None:
            raise ProxyError("the proxy is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._listen_host, self._listen_port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="quorum-proxy", daemon=True)
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise ProxyError("the proxy is not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._closed.set()
        if self._listener is not None:
            try:
                # close() alone does not wake a thread blocked in accept()
                # on Linux; shutdown() does (the thread sees an OSError).
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "RoundRobinProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- membership
    def add_backend(self, spec: Union[str, Tuple[str, int]]) -> str:
        """Admit a backend into the rotation; returns its ``host:port``.

        Idempotent: adding an address already in rotation is a no-op.
        """
        backend = _Backend(*_parse_backend(spec))
        with self._lock:
            if all(existing.address != backend.address
                   for existing in self._backends):
                self._backends.append(backend)
                self._counts.setdefault(backend.address, 0)
        return backend.address

    def remove_backend(self, spec: Union[str, Tuple[str, int]]) -> bool:
        """Eject a backend from the rotation.

        New requests stop routing to it immediately; requests already in
        flight on a pooled connection complete, and each client thread
        closes its pooled connection to the departed backend before picking
        a target for its next request.  Returns whether the address was in
        rotation.  Removing the last backend is allowed -- the proxy then
        answers ``503 no_healthy_backends`` until a backend is re-admitted.
        """
        host, port = _parse_backend(spec)
        address = f"{host}:{port}"
        with self._lock:
            before = len(self._backends)
            self._backends = [backend for backend in self._backends
                              if backend.address != address]
            return len(self._backends) != before

    def has_backend(self, spec: Union[str, Tuple[str, int]]) -> bool:
        host, port = _parse_backend(spec)
        address = f"{host}:{port}"
        with self._lock:
            return any(backend.address == address
                       for backend in self._backends)

    # ------------------------------------------------------------- observation
    def request_counts(self) -> Dict[str, int]:
        """``{"host:port": requests proxied}`` (monotonic; survives removal)."""
        with self._lock:
            return dict(self._counts)

    def backend_stats(self, window_s: float = STATS_WINDOW_S
                      ) -> Dict[str, Dict[str, object]]:
        """Per-backend live stats over a sliding window.

        ``{"host:port": {requests, errors, window_s, rps, p50_ms, p95_ms}}``
        -- ``requests``/``errors`` are all-time monotonic totals;
        ``rps``/``p50_ms``/``p95_ms`` cover only successfully completed
        requests inside the last ``window_s`` seconds (None when that window
        is empty).  This is the proxy-side view the fleet supervisor merges
        into its status JSON.
        """
        now = time.monotonic()
        with self._lock:
            counts = dict(self._counts)
            errors = dict(self._errors)
            recents = {address: [latency for (done, latency) in samples
                                 if now - done <= window_s]
                       for address, samples in self._latencies.items()}
        # A proxy younger than the window has observed less than window_s of
        # traffic; dividing by the full window would understate RPS.
        effective_s = max(min(window_s, now - self._started_mono), 1e-9)
        stats: Dict[str, Dict[str, object]] = {}
        for address in counts:
            recent = sorted(recents.get(address, []))
            stats[address] = {
                "requests": counts[address],
                "errors": errors.get(address, 0),
                "window_s": window_s,
                "rps": round(len(recent) / effective_s, 3),
                "p50_ms": (round(percentile(recent, 50.0) * 1e3, 3)
                           if recent else None),
                "p95_ms": (round(percentile(recent, 95.0) * 1e3, 3)
                           if recent else None),
            }
        return stats

    def backend_addresses(self) -> List[str]:
        with self._lock:
            return [backend.address for backend in self._backends]

    def check_backends(self, timeout_s: float = 5.0) -> Dict[str, bool]:
        """``HEAD /v1/healthz`` against the current membership -> liveness."""
        with self._lock:
            snapshot = list(self._backends)
        return {backend.address: self.probe((backend.host, backend.port),
                                            timeout_s=timeout_s)
                for backend in snapshot}

    @staticmethod
    def probe(spec: Union[str, Tuple[str, int]],
              timeout_s: float = 5.0) -> bool:
        """``HEAD /v1/healthz`` against one address (need not be a member).

        The fleet supervisor probes ejected replicas with this before
        re-admitting them.
        """
        host, port = _parse_backend(spec)
        request = (f"HEAD /v1/healthz HTTP/1.1\r\n"
                   f"Host: {host}:{port}\r\n"
                   f"Connection: close\r\n\r\n").encode("latin-1")
        try:
            with socket.create_connection((host, port),
                                          timeout=timeout_s) as sock:
                sock.sendall(request)
                head = _SocketReader(sock).read_head()
        except OSError:
            return False
        if head is None:
            return False
        status_line, _ = _parse_head(head)
        parts = status_line.split()
        return len(parts) >= 2 and parts[1] == "200"

    # -------------------------------------------------------------- data plane
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_client, args=(client,),
                             daemon=True).start()

    def _next_rotation(self) -> int:
        with self._lock:
            index = self._rotation
            self._rotation += 1
            return index

    def _count(self, address: str) -> None:
        with self._lock:
            self._counts[address] = self._counts.get(address, 0) + 1

    def _record_latency(self, address: str, latency_s: float) -> None:
        with self._lock:
            samples = self._latencies.get(address)
            if samples is None:
                samples = self._latencies[address] = deque(
                    maxlen=_LATENCY_KEEP)
            samples.append((time.monotonic(), latency_s))

    def _record_error(self, address: str) -> None:
        with self._lock:
            self._errors[address] = self._errors.get(address, 0) + 1

    def _serve_client(self, client: socket.socket) -> None:
        client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = _SocketReader(client)
        # One persistent connection per backend, owned by this client thread
        # (request-level rotation would otherwise interleave two clients'
        # requests on one backend socket).
        pool: _Pool = {}
        try:
            while not self._closed.is_set():
                try:
                    head = reader.read_head()
                except (ConnectionError, OSError):
                    return
                if head is None:
                    return
                request_line, headers = _parse_head(head)
                method = request_line.split(" ", 1)[0].upper()
                # Every request leaves the proxy with an X-Request-Id: a
                # client-supplied one is forwarded untouched, otherwise one
                # is minted here so the replica's logs/metrics and the
                # response all share a trace id.
                if "x-request-id" not in headers:
                    head = (head[:-2]
                            + f"X-Request-Id: {new_request_id()}\r\n\r\n"
                            .encode("latin-1"))
                try:
                    length = _content_length(headers) or 0
                    body = reader.read_exact(length) if length else b""
                except (ConnectionError, OSError):
                    return  # client died mid-body; nothing to answer
                keep_alive = self._forward(client, pool, method, head, body,
                                           headers)
                client_closing = (headers.get("connection", "").lower()
                                  == "close"
                                  or request_line.endswith("HTTP/1.0"))
                if client_closing or not keep_alive:
                    return
        finally:
            for sock, _ in pool.values():
                try:
                    sock.close()
                except OSError:
                    pass
            try:
                client.close()
            except OSError:
                pass

    @staticmethod
    def _drop(pool: _Pool, address: str) -> None:
        entry = pool.pop(address, None)
        if entry is not None:
            try:
                entry[0].close()
            except OSError:
                pass

    def _forward(self, client: socket.socket, pool: _Pool,
                 method: str, head: bytes, body: bytes,
                 request_headers: Optional[Dict[str, str]] = None) -> bool:
        """Proxy one request; returns False when the client pair must close."""
        forward_start = time.monotonic()
        with self._lock:
            snapshot = list(self._backends)
        members = {backend.address for backend in snapshot}
        # A backend removed from rotation must not keep a pooled connection
        # alive: close ours before picking a target (in-flight requests on
        # other client threads finish first -- each thread owns its pool).
        for address in [pooled for pooled in pool if pooled not in members]:
            self._drop(pool, address)
        if not snapshot:
            return self._send_synthesized(
                client, method, 503, _NO_BACKENDS_CODE,
                "every backend is out of rotation; retry shortly",
                {"backends": []}, retry_after=True)
        idempotent = method in _IDEMPOTENT_METHODS
        attempts = min(len(snapshot), 1 + self._retry_budget)
        start = self._next_rotation()
        draining_response: Optional[bytes] = None
        tried: List[str] = []
        for offset in range(attempts):
            backend = snapshot[(start + offset) % len(snapshot)]
            tried.append(backend.address)
            attempt_start = time.monotonic()
            outcome, payload = self._attempt(pool, backend, method, head,
                                             body)
            if outcome == "ok":
                self._count(backend.address)
                self._record_latency(backend.address,
                                     time.monotonic() - attempt_start)
                if request_headers is not None \
                        and "x-timing" in request_headers:
                    payload = self._inject_proxy_timing(
                        payload, time.monotonic() - forward_start)
                return self._reply(client, payload)
            if outcome == "draining":
                # A 503 shutting_down proves the backend did NOT execute the
                # request, so moving it to the next replica is safe for every
                # method -- this is what makes graceful drain invisible.
                draining_response = payload
                continue
            # Connection-level failure.  Idempotent requests keep walking the
            # rotation; anything else must not be replayed (the backend may
            # have executed it) and surfaces as a synthesized 502.
            self._record_error(backend.address)
            if not idempotent:
                return self._send_synthesized(
                    client, method, 502, _BAD_GATEWAY_CODE,
                    f"backend {backend.address} failed and {method} is not "
                    f"safe to retry",
                    {"tried": tried, "request_sent": bool(payload),
                     "backends": sorted(members)})
        if draining_response is not None:
            # Everything reachable was draining; relay the server's own 503
            # (it carries the Retry-After header).
            return self._reply(client, draining_response) and False
        return self._send_synthesized(
            client, method, 502, _BAD_GATEWAY_CODE,
            "no backend replica accepted the request",
            {"tried": tried, "backends": sorted(members)})

    def _attempt(self, pool: _Pool, backend: _Backend, method: str,
                 head: bytes, body: bytes) -> Tuple[str, object]:
        """Try one backend; ``("ok"|"draining", response)`` or ``("failed",
        request_sent)``.

        A pooled connection may have been closed by the backend since its
        last use (keep-alive race, replica restart); such a failure is
        retried once on a fresh socket to the *same* backend before counting
        as a failure.
        """
        address = backend.address
        for _pass in range(2):
            fresh = address not in pool
            if fresh:
                try:
                    sock = backend.connect(self._backend_timeout_s)
                except OSError:
                    return "failed", False  # connect refused: nothing sent
                pool[address] = (sock, _SocketReader(sock))
            sock, reader = pool[address]
            sent = False
            try:
                sock.sendall(head + body)
                sent = True
                response, status, reusable = self._read_response(reader,
                                                                 method)
            except (OSError, ConnectionError):
                self._drop(pool, address)
                if not fresh:
                    continue  # stale pooled socket: retry on a fresh one
                return "failed", sent
            if status == 503 and _DRAINING_MARKER in response:
                # The backend is draining; never queue another request on
                # this connection.
                self._drop(pool, address)
                return "draining", response
            if not reusable:
                self._drop(pool, address)
            return "ok", response
        return "failed", False  # unreachable; loop always returns

    @staticmethod
    def _read_response(reader: _SocketReader, method: str
                       ) -> Tuple[bytes, int, bool]:
        """One full response; ``(bytes, status code, backend reusable?)``."""
        head = reader.read_head()
        if head is None:
            raise ConnectionError("backend closed before responding")
        status_line, headers = _parse_head(head)
        length = _content_length(headers)
        status = status_line.split()
        code = int(status[1]) if len(status) >= 2 and status[1].isdigit() else 0
        # HEAD responses and 1xx/204/304 carry headers only, regardless of
        # the Content-Length the server advertises for parity with GET.
        if method == "HEAD" or code < 200 or code in (204, 304):
            payload = b""
        elif length is None:
            # No framing information: stream until EOF, then retire the pair.
            return head + reader.read_to_eof(), code, False
        else:
            payload = reader.read_exact(length)
        reusable = (headers.get("connection", "").lower() != "close"
                    and not status_line.startswith("HTTP/1.0"))
        return head + payload, code, reusable

    @staticmethod
    def _inject_proxy_timing(response: bytes, elapsed_s: float) -> bytes:
        """Add ``X-Proxy-Timing`` to a relayed response head.

        The span covers the proxy's whole handling of the request (rotation
        pick, backend round-trip, retries); subtracting the server's
        ``X-Timing`` total gives the proxy + network overhead.  Safe to
        splice: headers sit above the blank line, so ``Content-Length``
        still frames the body exactly.
        """
        boundary = response.find(b"\r\n\r\n")
        if boundary < 0:  # unframed stream-to-EOF relay; leave untouched
            return response
        header = (f"X-Proxy-Timing: proxy={elapsed_s * 1e3:.3f}\r\n"
                  .encode("latin-1"))
        return (response[:boundary + 2] + header
                + response[boundary + 2:])

    @staticmethod
    def _reply(client: socket.socket, response: bytes) -> bool:
        try:
            client.sendall(response)
        except OSError:
            return False  # client went away; stop this pair
        return True

    def _send_synthesized(self, client: socket.socket, method: str,
                          status: int, code: str, message: str,
                          detail: dict, retry_after: bool = False) -> bool:
        reason = {502: "Bad Gateway", 503: "Service Unavailable"}.get(
            status, "Error")
        payload = json.dumps({"error": {
            "code": code,
            "message": message,
            "detail": detail,
        }}).encode("utf-8")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                + ("Retry-After: 1\r\n" if retry_after else "")
                + "Connection: close\r\n\r\n").encode("latin-1")
        try:
            client.sendall(head + (b"" if method == "HEAD" else payload))
        except OSError:
            pass
        return False
