"""Serving telemetry: metrics registry, request tracing, flight recorder.

The runtime could not *see itself*: the only instrumentation was scattered
``diagnostics()`` dicts and client-side percentiles in the loadtest harness.
This module is the measurement substrate everything else plugs into --
stdlib-only and cheap enough to stay on for every request:

* :class:`MetricsRegistry` -- thread-safe counters, gauges, and fixed-bucket
  latency histograms with exact p50/p95/p99 readout (a bounded reservoir of
  raw observations backs the percentiles, so they interpolate exactly like
  :func:`repro.serving.loadtest.percentile` instead of quantizing to bucket
  edges).  One process-global default registry
  (:func:`default_registry`) serves the common case; tests inject private
  instances.  Snapshots render as JSON (``GET /v1/metrics``) and as
  Prometheus text exposition (``?format=prometheus``).
* **Request tracing** -- :func:`new_request_id` mints the ``X-Request-Id``
  every request entering the proxy or a replica gets (or propagates), and
  :func:`format_timing_header` renders per-stage spans (queue wait, batch
  assembly, engine compute, shot noise, serialization) into the opt-in
  ``X-Timing`` response header.
* :class:`FlightRecorder` -- a bounded in-memory ring plus optional JSONL
  sink of structured fleet events (state transitions, ejects, restarts,
  drains, crash-loop trips) with monotonic timestamps and request-id
  correlation; the supervisor dumps it via ``quorum-repro fleet --events``
  and on abnormal exit.
* **Metric-name lint** -- :func:`lint_metric_name` enforces the naming
  convention (snake_case, unit suffix per kind); the registry applies it at
  creation time and ``python -m repro.serving.telemetry --lint`` checks the
  well-known catalog in CI.

Every metric the serving stack registers is declared in
:data:`WELL_KNOWN_METRICS` so operators (and the lint) have one catalog to
read.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time
import uuid
from collections import deque
from typing import (Callable, Deque, Dict, IO, List, Mapping, Optional,
                    Sequence, Tuple, Union)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "FlightRecorder",
    "default_registry",
    "new_request_id",
    "format_timing_header",
    "parse_timing_header",
    "percentile",
    "lint_metric_name",
    "lint_metric_names",
    "DEFAULT_LATENCY_BUCKETS_S",
    "WELL_KNOWN_METRICS",
]

#: Fixed histogram bucket upper bounds (seconds) for request/stage latencies:
#: half a millisecond up to ten seconds, roughly logarithmic -- the range the
#: serving benchmarks actually occupy.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: How many raw observations a histogram retains for exact percentile
#: readout (a sliding window; the bucket counts remain unbounded).
DEFAULT_RESERVOIR_SIZE = 2048

#: Sanitized request-id charset; anything else is replaced when a client
#: supplies its own id (header smuggling hygiene).
_REQUEST_ID_RE = re.compile(r"[^A-Za-z0-9._-]")

#: Upper bound on an accepted client-supplied request id.
MAX_REQUEST_ID_LEN = 128

# ----------------------------------------------------------- naming convention
#: snake_case: lowercase alphanumerics + underscores, starting with a letter.
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Required name suffix per metric kind: counters count events (``_total``);
#: histograms and gauges carry their unit in the name so dashboards never
#: have to guess.
KIND_SUFFIXES: Dict[str, Tuple[str, ...]] = {
    "counter": ("_total",),
    "histogram": ("_seconds", "_bytes"),
    "gauge": ("_seconds", "_bytes", "_count", "_ratio"),
}


def lint_metric_name(name: str, kind: str) -> List[str]:
    """Problems with a metric name under the naming convention (empty = ok)."""
    problems: List[str] = []
    if kind not in KIND_SUFFIXES:
        return [f"unknown metric kind {kind!r}; expected one of "
                f"{sorted(KIND_SUFFIXES)}"]
    if not _METRIC_NAME_RE.match(name):
        problems.append(
            f"{name!r} is not snake_case (^[a-z][a-z0-9_]*$)")
    suffixes = KIND_SUFFIXES[kind]
    if not name.endswith(suffixes):
        problems.append(
            f"{name!r} ({kind}) must end with a unit suffix: "
            f"{', '.join(suffixes)}")
    if "__" in name:
        problems.append(f"{name!r} contains a double underscore")
    return problems


def lint_metric_names(names: Sequence[Tuple[str, str]]) -> List[str]:
    """Lint ``[(name, kind), ...]``; returns every problem found."""
    problems: List[str] = []
    for name, kind in names:
        problems.extend(lint_metric_name(name, kind))
    return problems


# ------------------------------------------------------------------ percentile
def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence.

    Exactly the interpolation :func:`repro.serving.loadtest.percentile` uses
    (and a test pins them together), so server-side histogram percentiles and
    client-side loadtest percentiles are directly comparable.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    position = (len(sorted_values) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (sorted_values[lower] * (1.0 - fraction)
            + sorted_values[upper] * fraction)


# ------------------------------------------------------------------ primitives
_Labels = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic event counter, optionally partitioned by label values."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = lock or threading.Lock()
        self._values: Dict[_Labels, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            items = sorted(self._values.items())
        return [{"labels": dict(labels), "value": value}
                for labels, value in items]


class Gauge:
    """A value that can go up and down (queue depth, in-flight requests)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = lock or threading.Lock()
        self._values: Dict[_Labels, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            items = sorted(self._values.items())
        return [{"labels": dict(labels), "value": value}
                for labels, value in items]


class Histogram:
    """Fixed-bucket histogram with exact percentile readout.

    The cumulative bucket counts (plus ``sum`` and ``count``) are the
    Prometheus-compatible face; a bounded reservoir of the most recent raw
    observations backs ``percentiles()``, so p50/p95/p99 are exact over the
    window rather than quantized to bucket edges.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 lock: Optional[threading.Lock] = None) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending, non-empty")
        self.name = name
        self.help_text = help_text
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._lock = lock or threading.Lock()
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._reservoir: Deque[float] = deque(maxlen=int(reservoir_size))

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    index = position
                    break
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1
            self._reservoir.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentiles(self, qs: Sequence[float] = (50.0, 95.0, 99.0)
                    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., ...}`` over the retained reservoir (None if empty)."""
        with self._lock:
            ordered = sorted(self._reservoir)
        return {f"p{q:g}": (percentile(ordered, q) if ordered else None)
                for q in qs}

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._bucket_counts)
            total_sum, total_count = self._sum, self._count
            ordered = sorted(self._reservoir)
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + counts[-1]
        payload: Dict[str, object] = {
            "count": total_count,
            "sum": round(total_sum, 9),
            "buckets": cumulative,
        }
        for q in (50.0, 95.0, 99.0):
            payload[f"p{q:g}"] = (round(percentile(ordered, q), 9)
                                  if ordered else None)
        return payload


# -------------------------------------------------------------------- registry
class MetricsRegistry:
    """Thread-safe named metrics with JSON and Prometheus rendering.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent for a
    matching kind; a kind clash raises) and validate names against the
    naming convention, so a typo fails at registration, not on a dashboard.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, name: str, kind: str, factory):
        problems = lint_metric_name(name, kind)
        if problems:
            raise ValueError("; ".join(problems))
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}")
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            name, "counter", lambda: Counter(name, help_text))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(
            name, "gauge", lambda: Gauge(name, help_text))

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
                  ) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, help_text, buckets))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------- rendering
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot: ``{counters, gauges, histograms}``."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        payload: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in metrics:
            payload[metric.kind + "s"][name] = metric.snapshot()
        return payload

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help_text:
                lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                series = metric.snapshot()
                if not series:
                    lines.append(f"{name} 0")
                for entry in series:
                    lines.append(
                        f"{name}{_format_labels(entry['labels'])} "
                        f"{_format_value(entry['value'])}")
            else:
                snap = metric.snapshot()
                for bound, cumulative in snap["buckets"].items():
                    lines.append(
                        f'{name}_bucket{{le="{bound}"}} {cumulative}')
                lines.append(f"{name}_sum {_format_value(snap['sum'])}")
                lines.append(f"{name}_count {snap['count']}")
        return "\n".join(lines) + "\n"


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else repr(float(value))


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (every replica process is one process)."""
    return _DEFAULT_REGISTRY


# --------------------------------------------------------------------- tracing
def new_request_id() -> str:
    """A fresh request id (uuid4 hex): what ``X-Request-Id`` carries."""
    return uuid.uuid4().hex


def clean_request_id(raw: Optional[str]) -> str:
    """A client-supplied id sanitized (or a fresh one when absent/empty)."""
    if not raw:
        return new_request_id()
    cleaned = _REQUEST_ID_RE.sub("", raw.strip())[:MAX_REQUEST_ID_LEN]
    return cleaned or new_request_id()


def format_timing_header(timings_s: Mapping[str, float]) -> str:
    """``stage=ms;...`` rendering of per-stage spans for ``X-Timing``.

    Values arrive in seconds (what ``time.perf_counter`` deltas are) and are
    rendered in milliseconds with microsecond resolution.
    """
    return ";".join(f"{stage}={seconds * 1e3:.3f}"
                    for stage, seconds in timings_s.items())


def parse_timing_header(header: str) -> Dict[str, float]:
    """Inverse of :func:`format_timing_header` -> ``{stage: seconds}``."""
    timings: Dict[str, float] = {}
    for part in header.split(";"):
        stage, separator, value = part.partition("=")
        if separator:
            try:
                timings[stage.strip()] = float(value) / 1e3
            except ValueError:
                continue
    return timings


# ------------------------------------------------------------- flight recorder
#: Every key a flight-recorder event always carries (the JSONL schema).
EVENT_FIELDS = ("seq", "t_mono_s", "t_wall_s", "kind")


class FlightRecorder:
    """Bounded ring + optional JSONL sink of structured fleet events.

    Each event carries a process-monotonic timestamp (``t_mono_s``, for
    ordering and intervals), a wall-clock one (``t_wall_s``, for humans), a
    monotonically increasing ``seq``, a ``kind``, and arbitrary extra fields
    -- including ``request_id`` where a request is implicated, so fleet
    events correlate with traced requests.

    The ring keeps the most recent ``capacity`` events in memory (what
    :meth:`events` and the abnormal-exit dump read); the optional sink
    appends every event as one JSON line the moment it is recorded, so a
    crash loses nothing that was sunk.
    """

    def __init__(self, capacity: int = 1024,
                 sink: Union[str, IO[str], None] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=int(capacity))
        self._seq = 0
        self._clock = clock
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        if isinstance(sink, str):
            self._sink = open(sink, "a", encoding="utf-8")  # noqa: SIM115
            self._owns_sink = True
        elif sink is not None:
            self._sink = sink

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def record(self, kind: str, request_id: Optional[str] = None,
               **fields: object) -> Dict[str, object]:
        """Append one event; returns it (already sealed with seq + stamps)."""
        with self._lock:
            self._seq += 1
            event: Dict[str, object] = {
                "seq": self._seq,
                "t_mono_s": round(self._clock(), 6),
                "t_wall_s": round(time.time(), 6),
                "kind": str(kind),
            }
            if request_id is not None:
                event["request_id"] = request_id
            event.update(fields)
            self._ring.append(event)
            sink = self._sink
            if sink is not None:
                try:
                    sink.write(json.dumps(event, sort_keys=True) + "\n")
                    sink.flush()
                except (OSError, ValueError):
                    self._sink = None  # a broken sink must not kill the fleet
        return event

    def events(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The retained events, oldest first (optionally only the last N)."""
        with self._lock:
            events = list(self._ring)
        if limit is not None:
            events = events[-int(limit):]
        return [dict(event) for event in events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(self, stream: IO[str], limit: Optional[int] = None) -> int:
        """Write retained events as JSONL to ``stream``; returns the count."""
        events = self.events(limit)
        for event in events:
            stream.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def close(self) -> None:
        with self._lock:
            if self._sink is not None and self._owns_sink:
                try:
                    self._sink.close()
                except OSError:
                    pass
            self._sink = None


# ------------------------------------------------------------ metric catalog
#: Every metric the serving stack registers, as ``(name, kind)`` -- the
#: operator-facing catalog, and what ``--lint`` checks in CI.
WELL_KNOWN_METRICS: Tuple[Tuple[str, str], ...] = (
    # HTTP layer (server.py)
    ("http_requests_total", "counter"),
    ("http_errors_total", "counter"),
    ("http_request_seconds", "histogram"),
    ("http_serialization_seconds", "histogram"),
    ("http_inflight_count", "gauge"),
    # Micro-batch scoring (scorer.py)
    ("scoring_requests_total", "counter"),
    ("scoring_samples_total", "counter"),
    ("scoring_batches_total", "counter"),
    ("scoring_queue_wait_seconds", "histogram"),
    ("scoring_batch_assembly_seconds", "histogram"),
    ("scoring_engine_seconds", "histogram"),
    ("scoring_shot_noise_seconds", "histogram"),
    # Async jobs (jobs.py)
    ("jobs_finished_total", "counter"),
    ("jobs_live_count", "gauge"),
    ("job_queue_wait_seconds", "histogram"),
    ("job_run_seconds", "histogram"),
    # Sessions (server scrape)
    ("sessions_live_count", "gauge"),
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.serving.telemetry --lint``: check the catalog."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv != ["--lint"]:
        print("usage: python -m repro.serving.telemetry --lint",
              file=sys.stderr)
        return 2
    problems = lint_metric_names(WELL_KNOWN_METRICS)
    for problem in problems:
        print(f"metric-name lint: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"metric-name lint: {len(WELL_KNOWN_METRICS)} metric names OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI lint step
    sys.exit(main())
