"""The ``quorum-repro serve`` runtime service (stdlib only).

A versioned JSON API over the serving managers, fully specified in
``docs/API.md``:

* ``/v1/models``               -- multi-model registry: list, load, unload,
  and ``POST /v1/models/{id}/score`` for synchronous micro-batched scoring.
* ``/v1/jobs``                 -- async jobs (``replay_dataset``, ``score``,
  ``fit``) on a bounded worker pool: submit, poll status, fetch result,
  cancel; finished jobs expire after a TTL.
* ``/v1/sessions``             -- sticky scoring sessions (``dedicated``
  sequential + deterministic, or ``batch`` micro-batched) with idle TTLs.
* ``/v1/healthz``              -- liveness incl. registry/job/session counts.
* ``/v1/metrics``              -- telemetry snapshot (JSON, or Prometheus
  text exposition via ``?format=prometheus``); stays scrape-able during
  drain so operators can watch a replica go down.

Every request gets (or propagates) an ``X-Request-Id`` echoed on the
response; sending an ``X-Timing: 1`` request header opts into a per-stage
span breakdown on the ``X-Timing`` response header.  All requests are
recorded into the runtime's :class:`~repro.serving.telemetry.MetricsRegistry`
(counts by route/method/status, error counts by code, latency histograms).

The pre-``/v1`` routes (``POST /score``, ``GET /healthz``, ``GET /model``)
remain as thin **deprecated aliases** over the default model: responses are
byte-compatible with the original single-model server and carry a
``Deprecation`` header pointing at the ``/v1`` successor.

Every handler decodes its body into a typed request model
(:mod:`repro.serving.models`), calls a manager, and encodes a typed
response -- the router below owns all HTTP mechanics (body limits, 405 with
``Allow``, the uniform ``{"error": {code, message, detail}}`` envelope).
No dependency beyond the Python standard library is introduced on either
side; the CI smoke test drives the service with ``urllib``.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.quantum.compiler import CircuitCompiler
from repro.serving.artifact import ModelArtifact
from repro.serving.jobs import JobManager
from repro.serving.models import (
    ApiError,
    HealthResponse,
    JobListResponse,
    JobResultResponse,
    JobSubmitRequest,
    ModelListResponse,
    ModelLoadRequest,
    ScoreRequest,
    ScoreResponse,
    SessionCreateRequest,
    SessionListResponse,
)
from repro.serving.registry import ModelRegistry, RegisteredModel
from repro.serving.scorer import OnlineScorer, ScoreResult
from repro.serving.sessions import SessionManager
from repro.serving.telemetry import (
    MetricsRegistry,
    clean_request_id,
    default_registry,
    format_timing_header,
)

__all__ = ["ServerRuntime", "QuorumHTTPServer", "build_server", "run_server"]

#: Largest accepted request body; payloads are sample matrices, so a
#: megabyte-scale bound guards the JSON parser without limiting real use.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: How long one synchronous score request may wait on its future before the
#: server gives up (the scorer executes batches promptly; this only bounds
#: pathological stalls so a client never hangs forever).
SCORE_TIMEOUT_S = 300.0

#: API version segment every current route lives under.
API_VERSION = "v1"

#: Seconds a graceful shutdown waits for in-flight requests before giving up
#: (they would otherwise be severed when the process exits).  Generous: a
#: request can legitimately sit in the scorer queue behind a large batch.
DRAIN_TIMEOUT_S = 30.0

#: What drain responses tell clients via ``Retry-After``: by then either the
#: supervisor has removed this replica from rotation or a restart is up.
RETRY_AFTER_S = 1

#: Upper bound on the debug delay hook, so a typo cannot wedge a fleet.
MAX_DEBUG_DELAY_S = 60.0


class ServerRuntime:
    """The server's non-HTTP state: registry + job/session managers.

    Owns lifecycle (``drain`` -> reject new work with ``shutting_down``;
    ``close`` -> tear every manager down) so the HTTP layer stays a router.
    """

    def __init__(self, registry: ModelRegistry,
                 job_workers: int = 2, job_ttl_s: float = 900.0,
                 session_ttl_s: float = 600.0,
                 debug_hooks: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        self.metrics = metrics if metrics is not None else default_registry()
        self.jobs = JobManager(registry, workers=job_workers, ttl_s=job_ttl_s,
                               metrics=self.metrics)
        self.sessions = SessionManager(registry, default_ttl_s=session_ttl_s)
        self.debug_hooks = bool(debug_hooks)
        self._draining = threading.Event()
        self._idle = threading.Condition()
        self._inflight = 0
        self._delay_s = 0.0
        # HTTP-layer instruments (created once; handlers record per request).
        self.m_requests = self.metrics.counter(
            "http_requests_total", "HTTP requests by route, method, status")
        self.m_errors = self.metrics.counter(
            "http_errors_total", "HTTP error responses by API error code")
        self.h_request = self.metrics.histogram(
            "http_request_seconds", "End-to-end request latency per route")
        self.h_serialization = self.metrics.histogram(
            "http_serialization_seconds", "Response JSON encoding time")
        self.g_inflight = self.metrics.gauge(
            "http_inflight_count", "Requests currently being handled")
        self.g_jobs_live = self.metrics.gauge(
            "jobs_live_count", "Jobs currently tracked, by status")
        self.g_sessions_live = self.metrics.gauge(
            "sessions_live_count", "Open scoring sessions")

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Stop accepting requests (everything answers 503 shutting_down)."""
        self._draining.set()

    # ------------------------------------------------------- in-flight tracking
    # The graceful-drain contract ("zero dropped in-flight requests on
    # scale-in") needs the server to know when the last accepted request has
    # been fully answered: drain() flips new arrivals to 503, wait_idle()
    # holds the teardown until the counter returns to zero.
    def request_started(self) -> None:
        with self._idle:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    @property
    def inflight(self) -> int:
        with self._idle:
            return self._inflight

    def wait_idle(self, timeout_s: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: self._inflight <= 0,
                                       timeout=timeout_s)

    # ------------------------------------------------------------- debug hooks
    def set_delay(self, seconds: float) -> float:
        """Per-request artificial delay (fault injection; needs debug_hooks)."""
        seconds = float(seconds)
        if not (0.0 <= seconds <= MAX_DEBUG_DELAY_S):
            raise ApiError(
                "bad_request",
                f"delay must be within [0, {MAX_DEBUG_DELAY_S:.0f}] seconds")
        self._delay_s = seconds
        return seconds

    @property
    def delay_s(self) -> float:
        return self._delay_s

    def close(self) -> None:
        self.drain()
        self.jobs.close()
        self.sessions.close()
        self.registry.close()

    def default_scorer(self) -> OnlineScorer:
        return self.registry.get().scorer


class QuorumHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning the runtime it serves."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], runtime: ServerRuntime,
                 quiet: bool = True) -> None:
        self.runtime = runtime
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def scorer(self) -> OnlineScorer:
        """The default model's scorer (pre-/v1 compatibility accessor)."""
        return self.runtime.default_scorer()

    def handle_error(self, request, client_address) -> None:
        """Clients that hang up are routine, not tracebacks.

        A peer may reset the connection while we are still *reading* its
        request (the write side is already guarded in ``_Handler._dispatch``);
        the stock implementation prints a full traceback for that, which under
        concurrent load buries real errors in noise.
        """
        error = sys.exc_info()[1]
        if isinstance(error, (BrokenPipeError, ConnectionResetError)):
            if not self.quiet:
                sys.stderr.write(
                    f"client {client_address} disconnected: "
                    f"{type(error).__name__}\n")
            return
        super().handle_error(request, client_address)

    def shutdown(self) -> None:  # pragma: no cover - exercised via clients
        """Graceful stop: drain, finish in-flight requests, then tear down."""
        self.runtime.drain()
        self.runtime.wait_idle(timeout_s=DRAIN_TIMEOUT_S)
        super().shutdown()
        self.runtime.close()


# Route table: (compiled path pattern, {method: handler attribute}, legacy?,
# route template).  A path that matches a pattern but not a listed method is
# a 405 with an ``Allow`` header; a path matching nothing is a 404
# ``not_found``.  The template is the stable, low-cardinality ``route`` label
# metrics carry (``/v1/jobs/{id}``, never the raw path with its unbounded
# ids).
_LEGACY_SUCCESSORS = {
    "/score": "/v1/models/{id}/score",
    "/healthz": "/v1/healthz",
    "/model": "/v1/models/{id}",
}

_ROUTES = (
    (re.compile(r"^/v1/healthz$"),
     {"GET": "_v1_health"}, False, "/v1/healthz"),
    (re.compile(r"^/v1/metrics$"),
     {"GET": "_v1_metrics"}, False, "/v1/metrics"),
    (re.compile(r"^/v1/models$"),
     {"GET": "_v1_models_list", "POST": "_v1_models_load"}, False,
     "/v1/models"),
    (re.compile(r"^/v1/models/([^/]+)$"),
     {"GET": "_v1_model_get", "DELETE": "_v1_model_unload"}, False,
     "/v1/models/{id}"),
    (re.compile(r"^/v1/models/([^/]+)/score$"),
     {"POST": "_v1_model_score"}, False, "/v1/models/{id}/score"),
    (re.compile(r"^/v1/jobs$"),
     {"GET": "_v1_jobs_list", "POST": "_v1_jobs_submit"}, False, "/v1/jobs"),
    (re.compile(r"^/v1/jobs/([^/]+)$"),
     {"GET": "_v1_job_get", "DELETE": "_v1_job_cancel"}, False,
     "/v1/jobs/{id}"),
    (re.compile(r"^/v1/jobs/([^/]+)/result$"),
     {"GET": "_v1_job_result"}, False, "/v1/jobs/{id}/result"),
    (re.compile(r"^/v1/sessions$"),
     {"GET": "_v1_sessions_list", "POST": "_v1_sessions_create"}, False,
     "/v1/sessions"),
    (re.compile(r"^/v1/sessions/([^/]+)$"),
     {"GET": "_v1_session_get", "DELETE": "_v1_session_close"}, False,
     "/v1/sessions/{id}"),
    (re.compile(r"^/v1/sessions/([^/]+)/score$"),
     {"POST": "_v1_session_score"}, False, "/v1/sessions/{id}/score"),
    # Fault-injection hook, only live when the runtime was built with
    # debug_hooks=True (404 otherwise, indistinguishable from absent).
    (re.compile(r"^/v1/_debug/delay$"),
     {"GET": "_v1_debug_delay_get", "POST": "_v1_debug_delay_set"}, False,
     "/v1/_debug/delay"),
    (re.compile(r"^/score$"), {"POST": "_legacy_score"}, True, "/score"),
    (re.compile(r"^/healthz$"), {"GET": "_legacy_health"}, True, "/healthz"),
    (re.compile(r"^/model$"), {"GET": "_legacy_model"}, True, "/model"),
)


class _PlainText:
    """Marker payload: ``_send_json`` sends it verbatim as text/plain
    (the Prometheus exposition body must not be JSON-encoded)."""

    __slots__ = ("body",)

    def __init__(self, body: str) -> None:
        self.body = body


class _Handler(BaseHTTPRequestHandler):
    server: QuorumHTTPServer

    #: Persistent connections: every response carries a Content-Length, so
    #: keep-alive framing is always unambiguous.  HTTP/1.0 (the inherited
    #: default) forced a fresh TCP handshake per request, which dominates
    #: small-request latency under closed-loop load.
    protocol_version = "HTTP/1.1"

    #: TCP_NODELAY.  Responses are written as two small segments (headers,
    #: then body); with Nagle on, the body segment waits for the ACK of the
    #: headers, and on a keep-alive connection the client's delayed ACK turns
    #: that into a ~40 ms stall per request (HTTP/1.0 masked it because the
    #: immediate FIN flushed the send buffer).  The loadtest harness flushed
    #: this out: without it, keep-alive measured *slower* than reconnecting.
    disable_nagle_algorithm = True

    #: Set per request by :meth:`_dispatch`; HEAD sends headers only.
    _head_only = False
    #: Whether the request body was fully consumed (keep-alive hygiene).
    _body_consumed = True
    #: Tracing state, (re)set per request by :meth:`_dispatch`.  The class
    #: defaults keep ``_send_json`` safe if it is ever reached another way.
    _t_start = 0.0
    _method = "-"
    _route_label = "unmatched"
    _request_id: Optional[str] = None
    _want_timing = False
    _stage_timings: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def log_request(self, code="-", size="-") -> None:
        """Superseded by the structured access line in ``_send_json``."""

    def _send_json(self, status: int, payload: Union[dict, _PlainText],
                   extra_headers: Optional[Dict[str, str]] = None) -> None:
        serialization_start = time.perf_counter()
        if isinstance(payload, _PlainText):
            body = payload.body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        serialization_s = time.perf_counter() - serialization_start
        duration_s = time.perf_counter() - self._t_start
        runtime = self.server.runtime
        runtime.m_requests.inc(route=self._route_label, method=self._method,
                               status=str(status))
        runtime.h_request.observe(duration_s)
        runtime.h_serialization.observe(serialization_s)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        if self._want_timing:
            timings = dict(self._stage_timings or {})
            timings["serialization"] = serialization_s
            timings["total"] = duration_s
            self.send_header("X-Timing", format_timing_header(timings))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self._body_left_unread():
            # Answering without draining the declared body (413, unknown
            # path, ...) forces a close; advertise it so keep-alive clients
            # don't queue a second request on a doomed connection.
            self.send_header("Connection", "close")
        self.end_headers()
        if not self._head_only:
            self.wfile.write(body)
        if not self.server.quiet:
            sys.stderr.write(
                f"request_id={self._request_id or '-'} "
                f"method={self._method} route={self._route_label} "
                f"status={status} duration_ms={duration_s * 1e3:.3f}\n")

    def _send_error_envelope(self, error: ApiError,
                             extra_headers: Optional[Dict[str, str]] = None
                             ) -> None:
        self.server.runtime.m_errors.inc(code=error.code)
        self._send_json(error.http_status, error.envelope().to_json(),
                        extra_headers)

    def _read_json_body(self):
        """Decode the request body, enforcing size and parse limits."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ApiError("bad_request", "invalid Content-Length header")
        if length <= 0:
            raise ApiError("bad_request", "this route requires a JSON body")
        if length > MAX_BODY_BYTES:
            raise ApiError("payload_too_large",
                           f"request body exceeds {MAX_BODY_BYTES} bytes",
                           detail={"content_length": length})
        # A socket read may return fewer bytes than asked for (slow clients,
        # small TCP windows); loop until the declared length or EOF instead of
        # truncating the payload into a spurious JSON parse error.
        raw = bytearray()
        while len(raw) < length:
            chunk = self.rfile.read(length - len(raw))
            if not chunk:
                raise ApiError(
                    "bad_request",
                    f"request body truncated: Content-Length declared "
                    f"{length} bytes but the connection delivered only "
                    f"{len(raw)}")
            raw.extend(chunk)
        self._body_consumed = True
        try:
            return json.loads(bytes(raw).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ApiError("bad_request", f"invalid JSON body: {error}")

    def _body_left_unread(self) -> bool:
        """True when the request declared a body this handler never read."""
        if self._body_consumed:
            return False
        try:
            return int(self.headers.get("Content-Length", "0") or "0") > 0
        except ValueError:
            return True

    # ------------------------------------------------------------------- router
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        # HEAD is GET with the response body suppressed -- same routing, same
        # status and headers (load balancers and the replica proxy probe
        # liveness with HEAD /v1/healthz).
        self._head_only = method == "HEAD"
        lookup = "GET" if method == "HEAD" else method
        self._body_consumed = False
        self._t_start = time.perf_counter()
        self._method = method
        self._route_label = "unmatched"
        self._request_id = clean_request_id(self.headers.get("X-Request-Id"))
        self._want_timing = self.headers.get("X-Timing") is not None
        self._stage_timings = None
        extra_headers: Dict[str, str] = {}
        runtime = self.server.runtime
        runtime.request_started()
        try:
            try:
                if runtime.draining and path != "/v1/metrics":
                    # Not executed -- provably safe for the proxy to replay
                    # against another replica (any method, even POST).
                    # /v1/metrics stays scrape-able so operators can watch a
                    # replica drain.
                    extra_headers["Retry-After"] = str(RETRY_AFTER_S)
                    raise ApiError("shutting_down",
                                   "the server is shutting down; retry against "
                                   "another replica")
                delay_s = runtime.delay_s
                if delay_s > 0.0 and not path.startswith("/v1/_debug/"):
                    # Slow-response fault injection; the hook itself stays
                    # fast so the injector can always clear the delay.
                    time.sleep(delay_s)
                for pattern, methods, legacy, template in _ROUTES:
                    match = pattern.match(path)
                    if match is None:
                        continue
                    self._route_label = template
                    if legacy:
                        extra_headers["Deprecation"] = "true"
                        extra_headers["Link"] = (
                            f'<{_LEGACY_SUCCESSORS[path]}>; '
                            'rel="successor-version"')
                    handler = methods.get(lookup)
                    if handler is None:
                        extra_headers["Allow"] = ", ".join(sorted(methods))
                        raise ApiError(
                            "method_not_allowed",
                            f"{method} is not supported on {path}; allowed: "
                            f"{sorted(methods)}")
                    status, payload = getattr(self, handler)(*match.groups())
                    self._send_json(status, payload, extra_headers)
                    return
                raise ApiError("not_found",
                               f"unknown path {path!r}; the API lives under "
                               f"/{API_VERSION}/ (see docs/API.md)")
            except ApiError as error:
                self._send_error_envelope(error, extra_headers)
            except Exception as error:  # pragma: no cover - defensive backstop
                self._send_error_envelope(ApiError(
                    "internal", f"unhandled server error: "
                    f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, ConnectionResetError) as error:
            # The client went away mid-request (timeout, kill, reset).  There
            # is nobody left to answer: log one line and NEVER write a second
            # response at the dead socket -- the generic backstop above would
            # otherwise traceback trying exactly that.
            self.close_connection = True
            if not self.server.quiet:
                sys.stderr.write(
                    f"client {self.client_address} disconnected during "
                    f"{method} {path}: {type(error).__name__}\n")
        finally:
            runtime.request_finished()
            if self._body_left_unread():
                # The handler answered without draining the declared body
                # (413, unknown path, ...); the unread bytes would be parsed
                # as the next request on a keep-alive connection.
                self.close_connection = True

    # ----------------------------------------------------------------- helpers
    @property
    def runtime(self) -> ServerRuntime:
        return self.server.runtime

    def _score_on(self, entry: RegisteredModel,
                  request: ScoreRequest) -> ScoreResult:
        """Micro-batched synchronous scoring with uniform error mapping."""
        try:
            future = entry.scorer.submit(request.samples, mode=request.mode)
        except (TypeError, ValueError) as error:
            raise ApiError("bad_request", str(error)) from None
        try:
            result = future.result(timeout=SCORE_TIMEOUT_S)
            self._stage_timings = dict(result.timings or {})
            return result
        except FutureTimeoutError:
            # Cancel so the worker can skip the orphaned request instead of
            # burning a batch slot on a response nobody will read.
            future.cancel()
            raise ApiError("timeout",
                           f"scoring timed out after {SCORE_TIMEOUT_S:.0f}s")
        except (TypeError, ValueError) as error:
            raise ApiError("bad_request", str(error)) from None

    @staticmethod
    def _score_response(entry: RegisteredModel,
                        result: ScoreResult) -> ScoreResponse:
        return ScoreResponse(
            scores=result.scores.tolist(),
            num_runs=result.num_runs,
            num_samples=result.num_samples,
            mode=result.mode,
            model_id=entry.model_id,
            schema_version=entry.artifact.schema_version,
        )

    # --------------------------------------------------------------- /v1 routes
    def _v1_metrics(self):
        runtime = self.runtime
        # Point-in-time gauges are sampled at scrape time (cheaper than
        # keeping them current on every state change).
        runtime.g_inflight.set(runtime.inflight)
        for status_name, live in runtime.jobs.counts().items():
            runtime.g_jobs_live.set(live, status=status_name)
        runtime.g_sessions_live.set(len(runtime.sessions))
        query = urlsplit(self.path).query
        accept = self.headers.get("Accept", "")
        if "format=prometheus" in query or "text/plain" in accept:
            return 200, _PlainText(runtime.metrics.render_prometheus())
        return 200, runtime.metrics.snapshot()

    def _v1_health(self):
        runtime = self.runtime
        response = HealthResponse(
            status="ok",
            api_version=API_VERSION,
            models=runtime.registry.ids(),
            default_model=runtime.registry.default_id(),
            jobs=runtime.jobs.counts(),
            sessions=len(runtime.sessions),
        )
        return 200, response.to_json()

    def _v1_models_list(self):
        entries = self.runtime.registry.list()
        response = ModelListResponse(
            models=[entry.info(is_default=(index == 0))
                    for index, entry in enumerate(entries)],
            default_model=self.runtime.registry.default_id(),
        )
        return 200, response.to_json()

    def _v1_models_load(self):
        request = ModelLoadRequest.from_json(self._read_json_body())
        entry = self.runtime.registry.load(request.path,
                                           model_id=request.model_id)
        is_default = self.runtime.registry.default_id() == entry.model_id
        return 201, entry.info(is_default=is_default).to_json()

    def _v1_model_get(self, model_id: str):
        entry = self.runtime.registry.get(model_id)
        is_default = self.runtime.registry.default_id() == entry.model_id
        diagnostics = entry.scorer.diagnostics()
        payload = entry.info(is_default=is_default).to_json()
        payload["serving"] = diagnostics["serving"]
        payload["compiler_cache"] = diagnostics["compiler_cache"]
        return 200, payload

    def _v1_model_unload(self, model_id: str):
        entry = self.runtime.registry.unload(model_id)
        return 200, entry.info().to_json()

    def _v1_model_score(self, model_id: str):
        request = ScoreRequest.from_json(self._read_json_body())
        entry = self.runtime.registry.get(model_id)
        result = self._score_on(entry, request)
        return 200, self._score_response(entry, result).to_json()

    def _v1_jobs_list(self):
        response = JobListResponse(
            jobs=[job.info() for job in self.runtime.jobs.list()])
        return 200, response.to_json()

    def _v1_jobs_submit(self):
        request = JobSubmitRequest.from_json(self._read_json_body())
        job = self.runtime.jobs.submit(request)
        return 202, job.info().to_json()

    def _v1_job_get(self, job_id: str):
        return 200, self.runtime.jobs.get(job_id).info().to_json()

    def _v1_job_result(self, job_id: str):
        result = self.runtime.jobs.result(job_id)
        job = self.runtime.jobs.get(job_id)
        response = JobResultResponse(job_id=job.job_id, kind=job.kind,
                                     result=result)
        return 200, response.to_json()

    def _v1_job_cancel(self, job_id: str):
        return 200, self.runtime.jobs.cancel(job_id).info().to_json()

    def _v1_sessions_list(self):
        response = SessionListResponse(
            sessions=[session.info()
                      for session in self.runtime.sessions.list()])
        return 200, response.to_json()

    def _v1_sessions_create(self):
        request = SessionCreateRequest.from_json(self._read_json_body())
        session = self.runtime.sessions.create(request)
        return 201, session.info().to_json()

    def _v1_session_get(self, session_id: str):
        return 200, self.runtime.sessions.get(session_id).info().to_json()

    def _v1_session_score(self, session_id: str):
        request = ScoreRequest.from_json(self._read_json_body())
        session = self.runtime.sessions.get(session_id)
        entry = self.runtime.registry.get(session.model_id)
        result = self.runtime.sessions.score(session_id, request,
                                             timeout_s=SCORE_TIMEOUT_S)
        self._stage_timings = dict(result.timings or {})
        return 200, self._score_response(entry, result).to_json()

    def _v1_session_close(self, session_id: str):
        session = self.runtime.sessions.close_session(session_id)
        return 200, session.info().to_json()

    # ------------------------------------------------------------- debug hooks
    def _require_debug_hooks(self) -> None:
        if not self.runtime.debug_hooks:
            raise ApiError("not_found",
                           "debug hooks are disabled on this server "
                           "(start it with --debug-hooks to enable)")

    def _v1_debug_delay_get(self):
        self._require_debug_hooks()
        return 200, {"delay_s": self.runtime.delay_s}

    def _v1_debug_delay_set(self):
        self._require_debug_hooks()
        body = self._read_json_body()
        if not isinstance(body, dict) or "delay_s" not in body:
            raise ApiError("bad_request",
                           'the body must be {"delay_s": <seconds>}')
        try:
            delay_s = self.runtime.set_delay(body["delay_s"])
        except (TypeError, ValueError):
            raise ApiError("bad_request",
                           "delay_s must be a number of seconds") from None
        return 200, {"delay_s": delay_s}

    # ------------------------------------------------------------ legacy routes
    # Deprecated aliases over the DEFAULT model, byte-compatible with the
    # original single-model server.  New functionality is /v1-only.
    def _legacy_score(self):
        request = ScoreRequest.from_json(self._read_json_body())
        entry = self.runtime.registry.get()
        result = self._score_on(entry, request)
        return 200, self._score_response(entry, result).to_json(legacy=True)

    def _legacy_health(self):
        summary = self.runtime.registry.get().artifact.summary()
        return 200, {
            "status": "ok",
            "format": summary["format"],
            "schema_version": summary["schema_version"],
            "ensemble_groups": summary["ensemble_groups"],
        }

    def _legacy_model(self):
        return 200, self.runtime.registry.get().scorer.diagnostics()


def build_server(model: Union[str, Path, ModelArtifact, OnlineScorer, None]
                 = None,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True,
                 scorer_kwargs: Optional[dict] = None,
                 *,
                 models: Optional[Dict[str, Union[str, Path]]] = None,
                 job_workers: int = 2,
                 job_ttl_s: float = 900.0,
                 session_ttl_s: float = 600.0,
                 compiler: Optional[CircuitCompiler] = None,
                 debug_hooks: bool = False,
                 metrics: Optional[MetricsRegistry] = None
                 ) -> QuorumHTTPServer:
    """Build (but do not start) a runtime server.

    ``model`` is the default model (path, artifact, or prebuilt scorer --
    the original single-model signature); ``models`` adds further artifacts
    as an ``{model_id: path}`` mapping.  At least one model must be given.
    All scorers share one compiler cache (``compiler`` overrides the
    process-wide instance, e.g. for cache-counter tests).

    ``metrics`` is the telemetry registry every layer (HTTP handlers, the
    scorers the registry builds, the job manager) records into; omitted, it
    is the process-global :func:`~repro.serving.telemetry.default_registry`.
    Tests pass a private :class:`MetricsRegistry` for isolated counters.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address`` (the CI smoke test and the examples do).
    """
    if metrics is None:
        metrics = default_registry()
    user_scorer_kwargs = scorer_kwargs
    scorer_kwargs = dict(scorer_kwargs or {})
    scorer_kwargs.setdefault("metrics", metrics)
    registry = ModelRegistry(compiler=compiler, scorer_kwargs=scorer_kwargs)
    if model is not None:
        if isinstance(model, OnlineScorer):
            if user_scorer_kwargs:
                raise ValueError(
                    "scorer_kwargs cannot be applied to a prebuilt "
                    "OnlineScorer; pass a model path or artifact instead")
            registry.adopt_scorer(model)
        elif isinstance(model, ModelArtifact):
            registry.register(model)
        else:
            registry.load(model)
    for model_id, path in (models or {}).items():
        registry.load(path, model_id=model_id)
    if len(registry) == 0:
        raise ValueError("build_server needs at least one model "
                         "(model=... or models={...})")
    runtime = ServerRuntime(registry, job_workers=job_workers,
                            job_ttl_s=job_ttl_s, session_ttl_s=session_ttl_s,
                            debug_hooks=debug_hooks, metrics=metrics)
    return QuorumHTTPServer((host, port), runtime, quiet=quiet)


def run_server(model_path: Union[str, Path, None], host: str = "127.0.0.1",
               port: int = 0, quiet: bool = True,
               scorer_kwargs: Optional[dict] = None,
               models: Optional[Dict[str, Union[str, Path]]] = None,
               job_workers: int = 2,
               job_ttl_s: float = 900.0,
               session_ttl_s: float = 600.0,
               debug_hooks: bool = False) -> int:
    """Load model(s) and serve until interrupted (the CLI entry point).

    Prints one ``serving ... on http://host:port`` line (flushed) before
    blocking, so wrappers that spawn the CLI can scrape the ephemeral port.

    On interrupt (SIGTERM/SIGINT) the teardown is a graceful drain: new
    requests answer ``503 shutting_down`` (with ``Retry-After``) while
    in-flight ones run to completion before the process exits -- this is the
    server half of the supervisor's zero-dropped-requests scale-in contract.
    """
    server = build_server(model_path, host=host, port=port, quiet=quiet,
                          scorer_kwargs=scorer_kwargs, models=models,
                          job_workers=job_workers, job_ttl_s=job_ttl_s,
                          session_ttl_s=session_ttl_s,
                          debug_hooks=debug_hooks)
    bound_host, bound_port = server.server_address[:2]
    served = model_path if model_path is not None \
        else ", ".join(server.runtime.registry.ids())
    try:
        # The print sits INSIDE the try: a supervisor that signals right
        # after scraping this line must not land its interrupt in the
        # unprotected gap between printing and serve_forever.
        print(f"serving {served} on http://{bound_host}:{bound_port}",
              flush=True)
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.runtime.drain()
        server.runtime.wait_idle(timeout_s=DRAIN_TIMEOUT_S)
        server.server_close()
        server.runtime.close()
    return 0
