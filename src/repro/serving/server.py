"""The ``quorum-repro serve`` HTTP service (stdlib only).

A thin JSON API over :class:`~repro.serving.scorer.OnlineScorer`:

* ``POST /score`` -- body ``{"samples": [[...], ...], "mode": "reference"}``;
  responds with ``{"scores": [...], "num_runs": ..., "mode": ...,
  "num_samples": ...}``.  Concurrent requests are coalesced by the scorer's
  micro-batching queue (the server is a ``ThreadingHTTPServer``, so each HTTP
  request runs on its own thread and blocks on its own future).
* ``GET /healthz`` -- liveness probe with the loaded model's identity.
* ``GET /model`` -- the scorer's full diagnostics: ensemble summary, artifact
  schema version, serving counters, and compiler cache hit/miss counters so
  operators can verify warm-cache serving.

No dependency beyond the Python standard library is introduced on either the
server or the client side; the CI smoke test drives the service with
``urllib``.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.serving.artifact import ModelArtifact, load_model
from repro.serving.scorer import OnlineScorer

__all__ = ["QuorumHTTPServer", "build_server", "run_server"]

#: Largest accepted request body; /score payloads are sample matrices, so a
#: megabyte-scale bound guards the JSON parser without limiting real use.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: How long one /score request may wait on its future before the server gives
#: up (the scorer executes batches promptly; this only bounds pathological
#: stalls so a client never hangs forever).
SCORE_TIMEOUT_S = 300.0


class QuorumHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning the scorer it serves."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], scorer: OnlineScorer,
                 quiet: bool = True) -> None:
        self.scorer = scorer
        self.quiet = quiet
        super().__init__(address, _Handler)

    def shutdown(self) -> None:  # pragma: no cover - exercised via clients
        super().shutdown()
        self.scorer.close()


class _Handler(BaseHTTPRequestHandler):
    server: QuorumHTTPServer

    # ------------------------------------------------------------------ plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # ------------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            summary = self.server.scorer.artifact.summary()
            self._send_json(200, {
                "status": "ok",
                "format": summary["format"],
                "schema_version": summary["schema_version"],
                "ensemble_groups": summary["ensemble_groups"],
            })
        elif self.path == "/model":
            self._send_json(200, self.server.scorer.diagnostics())
        else:
            self._error(404, f"unknown path {self.path!r}; "
                             "try /score, /healthz, or /model")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/score":
            self._error(404, f"unknown path {self.path!r}; POST /score")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "invalid Content-Length")
            return
        if length <= 0:
            self._error(400, "POST /score requires a JSON body")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._error(400, f"invalid JSON body: {error}")
            return
        if not isinstance(payload, dict) or "samples" not in payload:
            self._error(400, 'body must be an object with a "samples" matrix')
            return
        mode = payload.get("mode", "reference")
        try:
            future = self.server.scorer.submit(payload["samples"], mode=mode)
        except (TypeError, ValueError) as error:
            self._error(400, str(error))
            return
        try:
            result = future.result(timeout=SCORE_TIMEOUT_S)
        except FutureTimeoutError:
            # Cancel so the worker can skip the orphaned request instead of
            # burning a batch slot on a response nobody will read.
            future.cancel()
            self._error(504, f"scoring timed out after {SCORE_TIMEOUT_S:.0f}s")
            return
        except (TypeError, ValueError) as error:
            self._error(400, str(error))
            return
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"scoring failed: {error}")
            return
        self._send_json(200, {
            "scores": result.scores.tolist(),
            "num_runs": result.num_runs,
            "num_samples": result.num_samples,
            "mode": result.mode,
            "schema_version": self.server.scorer.artifact.schema_version,
        })


def build_server(model: Union[str, Path, ModelArtifact, OnlineScorer],
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True,
                 scorer_kwargs: Optional[dict] = None) -> QuorumHTTPServer:
    """Build (but do not start) a server for a model path, artifact, or scorer.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address`` (the CI smoke test and the examples do).
    """
    if isinstance(model, OnlineScorer):
        if scorer_kwargs:
            raise ValueError(
                "scorer_kwargs cannot be applied to a prebuilt OnlineScorer; "
                "pass a model path or artifact instead"
            )
        scorer = model
    else:
        artifact = model if isinstance(model, ModelArtifact) else load_model(model)
        scorer = OnlineScorer(artifact, **(scorer_kwargs or {}))
    return QuorumHTTPServer((host, port), scorer, quiet=quiet)


def run_server(model_path: Union[str, Path], host: str = "127.0.0.1",
               port: int = 0, quiet: bool = True,
               scorer_kwargs: Optional[dict] = None) -> int:
    """Load a model and serve it until interrupted (the CLI entry point).

    Prints one ``serving ... on http://host:port`` line (flushed) before
    blocking, so wrappers that spawn the CLI can scrape the ephemeral port.
    """
    server = build_server(model_path, host=host, port=port, quiet=quiet,
                          scorer_kwargs=scorer_kwargs)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving {model_path} on http://{bound_host}:{bound_port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.scorer.close()
    return 0
