"""Typed request/response models for the versioned serving API.

Every ``/v1`` route speaks one of these dataclasses -- the HTTP layer
(:mod:`repro.serving.server`) is a thin router that decodes a request body
with ``from_json`` (strict validation, unknown keys rejected), hands the
typed object to a manager, and encodes the manager's typed reply with
``to_json``.  No handler builds a response dict by hand.

Failures are uniform: anything a client can cause raises :class:`ApiError`
carrying a **stable error code** from :data:`ERROR_STATUS`; the server
serializes it as the one error envelope::

    {"error": {"code": "model_not_found", "message": "...", "detail": ...}}

The codes (not the messages) are the contract -- clients branch on
``error.code``, messages are free to improve.  ``docs/API.md`` documents the
code <-> HTTP-status mapping per route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "ERROR_STATUS",
    "JOB_KINDS",
    "JOB_STATES",
    "SESSION_MODES",
    "ApiError",
    "ErrorEnvelope",
    "ScoreRequest",
    "ScoreResponse",
    "ModelLoadRequest",
    "ModelInfo",
    "ModelListResponse",
    "JobSubmitRequest",
    "JobInfo",
    "JobListResponse",
    "JobResultResponse",
    "SessionCreateRequest",
    "SessionInfo",
    "SessionListResponse",
    "HealthResponse",
]

#: Stable error codes -> HTTP status.  Codes are the client contract; adding a
#: code is backward compatible, changing a mapping is not.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "model_not_found": 404,
    "model_exists": 409,
    "job_not_found": 404,
    "job_not_done": 409,
    "session_not_found": 404,
    "session_expired": 410,
    "payload_too_large": 413,
    "shutting_down": 503,
    "timeout": 504,
    "internal": 500,
}

#: Work kinds `POST /v1/jobs` accepts (see repro.serving.jobs).
JOB_KINDS = ("replay_dataset", "score", "fit")

#: Lifecycle states a job moves through (terminal: succeeded/failed/cancelled).
JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")

#: Session execution modes (see repro.serving.sessions).
SESSION_MODES = ("dedicated", "batch")


class ApiError(Exception):
    """A client-visible failure with a stable code and an HTTP status.

    Raised by the managers (registry/jobs/sessions) and by request
    validation; the server turns it into the uniform error envelope.
    """

    def __init__(self, code: str, message: str, detail: object = None) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown API error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail

    @property
    def http_status(self) -> int:
        return ERROR_STATUS[self.code]

    def envelope(self) -> "ErrorEnvelope":
        return ErrorEnvelope(code=self.code, message=self.message,
                             detail=self.detail)


@dataclass
class ErrorEnvelope:
    """The single error shape every route emits on failure."""

    code: str
    message: str
    detail: object = None

    def to_json(self) -> Dict[str, object]:
        return {"error": {"code": self.code, "message": self.message,
                          "detail": self.detail}}

    @classmethod
    def from_json(cls, payload: Mapping) -> "ErrorEnvelope":
        body = _require_mapping(payload, "error envelope").get("error")
        body = _require_mapping(body, "error")
        return cls(code=str(body.get("code", "internal")),
                   message=str(body.get("message", "")),
                   detail=body.get("detail"))


# --------------------------------------------------------------------- helpers
def _bad(message: str, detail: object = None) -> ApiError:
    return ApiError("bad_request", message, detail)


def _require_mapping(payload, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise _bad(f"{what} must be a JSON object, got "
                   f"{type(payload).__name__}")
    return payload


def _reject_unknown(payload: Mapping, allowed: Tuple[str, ...],
                    what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise _bad(f"unknown field(s) {unknown} in {what}",
                   detail={"allowed": list(allowed)})


def _optional_str(payload: Mapping, key: str, what: str) -> Optional[str]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise _bad(f"{what}.{key} must be a non-empty string")
    return value


def _choice(value: str, choices: Tuple[str, ...], what: str) -> str:
    if value not in choices:
        raise _bad(f"unknown {what} {value!r}; expected one of {choices}")
    return value


# ------------------------------------------------------------------- requests
@dataclass
class ScoreRequest:
    """Body of ``POST /v1/models/{id}/score`` (and the legacy ``/score``).

    ``samples`` stays the raw nested-list payload -- numeric/shape validation
    belongs to the scorer, which knows the model's feature width.
    """

    samples: List
    mode: str = "reference"

    _FIELDS = ("samples", "mode")

    @classmethod
    def from_json(cls, payload) -> "ScoreRequest":
        payload = _require_mapping(payload, "score request")
        _reject_unknown(payload, cls._FIELDS, "score request")
        if "samples" not in payload:
            raise _bad('score request must carry a "samples" matrix')
        samples = payload["samples"]
        if not isinstance(samples, list) or not samples:
            raise _bad("samples must be a non-empty list of feature rows")
        mode = payload.get("mode", "reference")
        if not isinstance(mode, str):
            raise _bad("mode must be a string")
        return cls(samples=samples,
                   mode=_choice(mode, ("reference", "replay"), "scoring mode"))

    def to_json(self) -> Dict[str, object]:
        return {"samples": self.samples, "mode": self.mode}


@dataclass
class ModelLoadRequest:
    """Body of ``POST /v1/models``: load an artifact from a server-side path."""

    path: str
    model_id: Optional[str] = None

    _FIELDS = ("path", "model_id")

    @classmethod
    def from_json(cls, payload) -> "ModelLoadRequest":
        payload = _require_mapping(payload, "model load request")
        _reject_unknown(payload, cls._FIELDS, "model load request")
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise _bad('model load request must carry a non-empty "path"')
        return cls(path=path,
                   model_id=_optional_str(payload, "model_id",
                                          "model load request"))

    def to_json(self) -> Dict[str, object]:
        return {"path": self.path, "model_id": self.model_id}


@dataclass
class JobSubmitRequest:
    """Body of ``POST /v1/jobs``.

    ``params`` is kind-specific and validated by the job manager (it owns the
    kind registry); this model only guarantees the shape of the wrapper.
    """

    kind: str
    model_id: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)

    _FIELDS = ("kind", "model_id", "params")

    @classmethod
    def from_json(cls, payload) -> "JobSubmitRequest":
        payload = _require_mapping(payload, "job request")
        _reject_unknown(payload, cls._FIELDS, "job request")
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise _bad('job request must carry a "kind" string')
        params = payload.get("params", {})
        params = dict(_require_mapping(params, "job request params"))
        return cls(kind=_choice(kind, JOB_KINDS, "job kind"),
                   model_id=_optional_str(payload, "model_id", "job request"),
                   params=params)

    def to_json(self) -> Dict[str, object]:
        return {"kind": self.kind, "model_id": self.model_id,
                "params": self.params}


@dataclass
class SessionCreateRequest:
    """Body of ``POST /v1/sessions``."""

    model_id: Optional[str] = None
    mode: str = "batch"
    ttl_s: Optional[float] = None

    _FIELDS = ("model_id", "mode", "ttl_s")

    @classmethod
    def from_json(cls, payload) -> "SessionCreateRequest":
        payload = _require_mapping(payload, "session request")
        _reject_unknown(payload, cls._FIELDS, "session request")
        mode = payload.get("mode", "batch")
        if not isinstance(mode, str):
            raise _bad("mode must be a string")
        ttl = payload.get("ttl_s")
        if ttl is not None:
            if isinstance(ttl, bool) or not isinstance(ttl, (int, float)):
                raise _bad("ttl_s must be a number of seconds")
            if ttl <= 0:
                raise _bad("ttl_s must be positive")
            ttl = float(ttl)
        return cls(model_id=_optional_str(payload, "model_id",
                                          "session request"),
                   mode=_choice(mode, SESSION_MODES, "session mode"),
                   ttl_s=ttl)

    def to_json(self) -> Dict[str, object]:
        return {"model_id": self.model_id, "mode": self.mode,
                "ttl_s": self.ttl_s}


# ------------------------------------------------------------------ responses
@dataclass
class ScoreResponse:
    """Scores for one request, tagged with the model that produced them."""

    scores: List[float]
    num_runs: int
    num_samples: int
    mode: str
    model_id: str
    schema_version: int

    def to_json(self, legacy: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scores": list(self.scores),
            "num_runs": self.num_runs,
            "num_samples": self.num_samples,
            "mode": self.mode,
            "schema_version": self.schema_version,
        }
        if not legacy:
            # The pre-/v1 response never carried a model id; the deprecated
            # alias keeps emitting byte-for-byte the shape old clients parse.
            payload["model_id"] = self.model_id
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "ScoreResponse":
        payload = _require_mapping(payload, "score response")
        return cls(scores=[float(s) for s in payload["scores"]],
                   num_runs=int(payload["num_runs"]),
                   num_samples=int(payload["num_samples"]),
                   mode=str(payload["mode"]),
                   model_id=str(payload.get("model_id", "")),
                   schema_version=int(payload["schema_version"]))


@dataclass
class ModelInfo:
    """One registry entry (``GET /v1/models`` items, ``POST /v1/models`` reply)."""

    model_id: str
    sha256: str
    path: Optional[str]
    loaded_at: float
    is_default: bool
    summary: Dict[str, object]

    def to_json(self) -> Dict[str, object]:
        return {
            "model_id": self.model_id,
            "sha256": self.sha256,
            "path": self.path,
            "loaded_at": self.loaded_at,
            "is_default": self.is_default,
            "summary": dict(self.summary),
        }


@dataclass
class ModelListResponse:
    models: List[ModelInfo]
    default_model: Optional[str]

    def to_json(self) -> Dict[str, object]:
        return {"models": [model.to_json() for model in self.models],
                "default_model": self.default_model}


@dataclass
class JobInfo:
    """Job status (``GET /v1/jobs/{id}``); ``result`` only via ``/result``."""

    job_id: str
    kind: str
    status: str
    model_id: Optional[str]
    created_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[Dict[str, object]] = None
    #: Submit-to-start wait and start-to-finish run time in seconds (None
    #: until the corresponding lifecycle edge has happened).
    queued_s: Optional[float] = None
    run_s: Optional[float] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "model_id": self.model_id,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "queued_s": self.queued_s,
            "run_s": self.run_s,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "JobInfo":
        payload = _require_mapping(payload, "job info")
        return cls(job_id=str(payload["job_id"]),
                   kind=str(payload["kind"]),
                   status=str(payload["status"]),
                   model_id=payload.get("model_id"),
                   created_at=float(payload["created_at"]),
                   started_at=payload.get("started_at"),
                   finished_at=payload.get("finished_at"),
                   error=payload.get("error"),
                   queued_s=payload.get("queued_s"),
                   run_s=payload.get("run_s"))


@dataclass
class JobListResponse:
    jobs: List[JobInfo]

    def to_json(self) -> Dict[str, object]:
        return {"jobs": [job.to_json() for job in self.jobs]}


@dataclass
class JobResultResponse:
    """``GET /v1/jobs/{id}/result`` -- the payload of a succeeded job."""

    job_id: str
    kind: str
    result: Dict[str, object]

    def to_json(self) -> Dict[str, object]:
        return {"job_id": self.job_id, "kind": self.kind,
                "result": dict(self.result)}


@dataclass
class SessionInfo:
    """Session state (``POST /v1/sessions`` reply, ``GET /v1/sessions/{id}``)."""

    session_id: str
    model_id: str
    mode: str
    ttl_s: float
    created_at: float
    last_used_at: float
    requests: int

    def to_json(self) -> Dict[str, object]:
        return {
            "session_id": self.session_id,
            "model_id": self.model_id,
            "mode": self.mode,
            "ttl_s": self.ttl_s,
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
            "requests": self.requests,
        }


@dataclass
class SessionListResponse:
    sessions: List[SessionInfo]

    def to_json(self) -> Dict[str, object]:
        return {"sessions": [session.to_json() for session in self.sessions]}


@dataclass
class HealthResponse:
    """``GET /v1/healthz`` -- richer than the legacy probe (which is frozen)."""

    status: str
    api_version: str
    models: List[str]
    default_model: Optional[str]
    jobs: Dict[str, int]
    sessions: int

    def to_json(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "api_version": self.api_version,
            "models": list(self.models),
            "default_model": self.default_model,
            "jobs": dict(self.jobs),
            "sessions": self.sessions,
        }
