"""Serving subsystem: persistent model artifacts + online micro-batched scoring.

The batch pipeline (``QuorumDetector.fit``) is a train-once step; this package
is the score-many half:

* :mod:`repro.serving.artifact` -- ``save_model`` / ``load_model`` persist a
  fitted ensemble (member plans, RNG snapshots, bucket reference statistics)
  as a versioned JSON bundle that restores in a fresh process without
  refitting.
* :mod:`repro.serving.scorer` -- :class:`OnlineScorer` scores unseen samples
  against the frozen ensemble, coalescing concurrent requests into fused
  micro-batches while keeping results bitwise independent of batching.
* :mod:`repro.serving.server` -- the stdlib-only ``quorum-repro serve`` HTTP
  JSON API (``POST /score``, ``GET /healthz``, ``GET /model``).
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    SCHEMA_VERSION,
    ArtifactCorruptError,
    ArtifactDtypeError,
    ArtifactError,
    ArtifactVersionError,
    MemberArtifact,
    ModelArtifact,
    load_model,
    save_model,
)
from repro.serving.scorer import SCORING_MODES, OnlineScorer, ScoreResult
from repro.serving.server import QuorumHTTPServer, build_server, run_server

__all__ = [
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactCorruptError",
    "ArtifactVersionError",
    "ArtifactDtypeError",
    "MemberArtifact",
    "ModelArtifact",
    "save_model",
    "load_model",
    "SCORING_MODES",
    "OnlineScorer",
    "ScoreResult",
    "QuorumHTTPServer",
    "build_server",
    "run_server",
]
