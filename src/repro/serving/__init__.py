"""Serving subsystem: artifacts, online scoring, and the runtime service.

The batch pipeline (``QuorumDetector.fit``) is a train-once step; this package
is the score-many half:

* :mod:`repro.serving.artifact` -- ``save_model`` / ``load_model`` persist a
  fitted ensemble (member plans, RNG snapshots, bucket reference statistics)
  as a versioned JSON bundle that restores in a fresh process without
  refitting.
* :mod:`repro.serving.scorer` -- :class:`OnlineScorer` scores unseen samples
  against the frozen ensemble, coalescing concurrent requests into fused
  micro-batches while keeping results bitwise independent of batching.
* :mod:`repro.serving.models` -- typed request/response models and the
  stable error codes of the versioned ``/v1`` HTTP API.
* :mod:`repro.serving.registry` -- :class:`ModelRegistry`: several loaded
  artifacts keyed by id/sha256, all sharing one compiler cache.
* :mod:`repro.serving.jobs` -- :class:`JobManager`: async long-running work
  (``replay_dataset``, ``score``, ``fit``) with polling, cancellation, and
  TTL-based garbage collection.
* :mod:`repro.serving.sessions` -- :class:`SessionManager`: sticky scoring
  sessions (``dedicated`` sequential-deterministic vs ``batch``
  micro-batched) with idle TTL expiry.
* :mod:`repro.serving.server` -- the stdlib-only ``quorum-repro serve``
  HTTP service fronting all of the above under ``/v1/`` (legacy ``/score``,
  ``/healthz``, ``/model`` kept as deprecated aliases); see ``docs/API.md``.
* :mod:`repro.serving.proxy` -- :class:`RoundRobinProxy`: a request-level
  round-robin HTTP proxy fanning one client-facing port across K replica
  backends, with health checks, failover, and per-replica request counts.
* :mod:`repro.serving.loadtest` -- closed-loop load generation
  (:func:`run_closed_loop`), subprocess replica fleets
  (:class:`ReplicaFleet` over :class:`ReplicaProcess` handles), and the
  ``quorum-repro loadtest`` orchestrator (:func:`run_loadtest`) producing
  saturation curves, 1->K scale-out efficiency, and knee-derived batching
  suggestions.
* :mod:`repro.serving.supervisor` -- :class:`FleetSupervisor`: the
  self-healing control loop behind ``quorum-repro fleet`` (health-based
  eject/re-admit, crash restarts with backoff + circuit breaker, graceful
  drain on scale-in, machine-readable status).
* :mod:`repro.serving.faults` -- :class:`FaultInjector` and
  :class:`ChaosGate`: process signals, connection-refused and mid-response
  network faults, and the server's delay hook -- the chaos-suite toolkit
  that proves the supervisor's recovery paths.
* :mod:`repro.serving.telemetry` -- :class:`MetricsRegistry` (thread-safe
  counters/gauges/histograms behind ``GET /v1/metrics``, JSON + Prometheus),
  request tracing (``X-Request-Id`` / ``X-Timing``), and the supervisor's
  :class:`FlightRecorder` event ring.
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT,
    SCHEMA_VERSION,
    ArtifactCorruptError,
    ArtifactDtypeError,
    ArtifactError,
    ArtifactVersionError,
    MemberArtifact,
    ModelArtifact,
    load_model,
    save_model,
)
from repro.serving.faults import ChaosGate, FaultInjector
from repro.serving.jobs import Job, JobManager
from repro.serving.loadtest import (
    ReplicaFleet,
    ReplicaProcess,
    ReplicaSpawnError,
    run_closed_loop,
    run_loadtest,
    spawn_replica,
)
from repro.serving.models import (
    ERROR_STATUS,
    JOB_KINDS,
    SESSION_MODES,
    ApiError,
    ErrorEnvelope,
    JobInfo,
    JobSubmitRequest,
    ModelInfo,
    ModelLoadRequest,
    ScoreRequest,
    ScoreResponse,
    SessionCreateRequest,
    SessionInfo,
)
from repro.serving.proxy import ProxyError, RoundRobinProxy
from repro.serving.registry import ModelRegistry, RegisteredModel
from repro.serving.scorer import SCORING_MODES, OnlineScorer, ScoreResult
from repro.serving.server import (
    QuorumHTTPServer,
    ServerRuntime,
    build_server,
    run_server,
)
from repro.serving.sessions import Session, SessionManager
from repro.serving.supervisor import (
    REPLICA_STATES,
    FleetSupervisor,
    ReplicaSlot,
    SupervisorPolicy,
)
from repro.serving.telemetry import (
    WELL_KNOWN_METRICS,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    new_request_id,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactCorruptError",
    "ArtifactVersionError",
    "ArtifactDtypeError",
    "MemberArtifact",
    "ModelArtifact",
    "save_model",
    "load_model",
    "ERROR_STATUS",
    "JOB_KINDS",
    "SESSION_MODES",
    "ApiError",
    "ErrorEnvelope",
    "JobInfo",
    "JobSubmitRequest",
    "ModelInfo",
    "ModelLoadRequest",
    "ScoreRequest",
    "ScoreResponse",
    "SessionCreateRequest",
    "SessionInfo",
    "Job",
    "JobManager",
    "ModelRegistry",
    "RegisteredModel",
    "Session",
    "SessionManager",
    "SCORING_MODES",
    "OnlineScorer",
    "ScoreResult",
    "ServerRuntime",
    "QuorumHTTPServer",
    "build_server",
    "run_server",
    "ProxyError",
    "RoundRobinProxy",
    "ReplicaFleet",
    "ReplicaProcess",
    "ReplicaSpawnError",
    "spawn_replica",
    "run_closed_loop",
    "run_loadtest",
    "REPLICA_STATES",
    "FleetSupervisor",
    "ReplicaSlot",
    "SupervisorPolicy",
    "ChaosGate",
    "FaultInjector",
    "WELL_KNOWN_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FlightRecorder",
    "default_registry",
    "new_request_id",
]
