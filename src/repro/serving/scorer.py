"""Online scoring of unseen samples against a frozen Quorum ensemble.

:class:`OnlineScorer` wraps a loaded :class:`~repro.serving.artifact.ModelArtifact`
and answers score requests without refitting.  Two scoring modes exist:

* ``"reference"`` (default, the online mode): each member's SWAP-test outputs
  for the new samples are compared against the *fit-time* bucket reference
  statistics frozen in the artifact
  (:func:`repro.core.scoring.reference_deviations`).
* ``"replay"``: the request must contain exactly the training set (same
  sample count and order); deviations are computed with the saved bucket
  partitions, reproducing ``QuorumDetector.anomaly_scores()`` **bitwise** for
  fixed seeds.

Determinism and micro-batching
------------------------------
For the analytic and density-matrix engines, shot noise is a single binomial
draw applied *after* the exact probability sweep.  The scorer exploits this:
the expensive linear algebra runs **exactly** (``shots=None``), and each
request's shot noise is drawn afterwards from a generator restored from the
member's persisted post-planning RNG state.  Two consequences:

* a request's scores depend only on its own samples -- concurrent submissions
  coalesced into one fused batch are bitwise identical to serial submission;
* one request containing the whole training set consumes the RNG exactly as
  ``fit`` did, which is what makes the replay mode bitwise.

The micro-batching queue (:meth:`OnlineScorer.submit`) coalesces concurrent
requests into one ``(levels x samples)`` fused batch per ensemble member, so
the per-request marginal cost is the sample-dependent prefix plus one matmul
per compression level -- the compiled encoder unitaries and suffix observables
come from the process-wide compiler cache and are reused across requests.

When the model was fitted with cross-member fusion
(``QuorumConfig.wants_fused_members``, or the ``fused_members`` constructor
override), the scorer additionally stacks the exact sweeps of members sharing
a compiled-circuit structure signature into one ``(members x levels x
samples)`` dispatch per group
(:meth:`~repro.core.execution.SwapTestEngine.p1_levels_member_batch`).  Shot
noise is still drawn per member afterwards, so fused scores remain bitwise
identical to the member-by-member sweep; the ``stacked_dispatches`` and
``members_per_dispatch`` counters in :meth:`OnlineScorer.diagnostics` show
the grouping in effect.

The trajectory-sampled statevector engine consumes randomness *during*
evolution, so its requests are executed one at a time (each with a freshly
restored member RNG); they still flow through the same queue.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.bucketing import BucketAssignment
from repro.core.config import QuorumConfig
from repro.core.ensemble import batch_amplitudes, plan_structure_key
from repro.core.execution import SwapTestEngine, apply_shot_noise, make_engine
from repro.core.scoring import (BucketStatistics, bucket_deviations,
                                reference_deviations)
from repro.quantum.compiler import CircuitCompiler, default_compiler
from repro.serving.artifact import MemberArtifact, ModelArtifact
from repro.serving.telemetry import MetricsRegistry, default_registry

__all__ = ["ScoreResult", "OnlineScorer", "SCORING_MODES"]

#: Modes accepted by :meth:`OnlineScorer.score` / :meth:`OnlineScorer.submit`.
SCORING_MODES = ("reference", "replay")

#: Engines whose shot noise is separable from the exact sweep (see module doc).
_FUSABLE_BACKENDS = ("analytic", "density_matrix")


@dataclass
class ScoreResult:
    """Scores for one request.

    Attributes
    ----------
    scores:
        Per-sample anomaly scores (higher = more anomalous), summed over every
        (member x compression level) run exactly like the detector does.
    num_runs:
        Number of runs accumulated into each score.
    mode:
        Scoring mode that produced the result.
    num_samples:
        Number of scored samples.
    timings:
        Per-stage wall-clock spans in seconds (``queue_wait``,
        ``batch_assembly``, ``engine_compute``, ``shot_noise``) where the
        execution path measured them; the HTTP layer renders these into the
        opt-in ``X-Timing`` response header.  Batch-level stages carry the
        whole batch's duration for every coalesced request in it.
    """

    scores: np.ndarray
    num_runs: int
    mode: str
    num_samples: int
    timings: Optional[Dict[str, float]] = None


@dataclass
class _Member:
    """Precomputed per-member serving state."""

    artifact: MemberArtifact
    selected_features: np.ndarray
    ansatz: object
    buckets: BucketAssignment
    #: Frozen per-level reference statistics; the degenerate-bucket mask is
    #: hoisted into the :class:`BucketStatistics` once at load time instead of
    #: being re-derived on every request.
    reference: Dict[int, BucketStatistics]

    def fresh_rng(self) -> np.random.Generator:
        """A generator positioned exactly after the member's planning draws."""
        return self.artifact.restored_rng()


class _Request:
    """One queued scoring request (normalized rows + completion future)."""

    __slots__ = ("normalized", "mode", "future", "enqueued_at")

    def __init__(self, normalized: np.ndarray, mode: str) -> None:
        self.normalized = normalized
        self.mode = mode
        self.future: "Future[ScoreResult]" = Future()
        self.enqueued_at = time.perf_counter()


class OnlineScorer:
    """Score unseen samples against a loaded model artifact.

    Parameters
    ----------
    artifact:
        A loaded :class:`~repro.serving.artifact.ModelArtifact`.
    simulation_backend / compile_circuits / fused_members:
        Optional overrides of the artifact's config (e.g. score on a different
        kernel backend than the model was fitted on, or force cross-member
        fused execution on/off regardless of the fitted executor choice).
    compiler:
        Compiled-program cache the engines should use; defaults to the
        process-wide shared instance.  Tests pass a private compiler so cache
        hit/miss counters can be asserted in isolation.
    max_batch_samples:
        Upper bound on the number of samples one coalesced micro-batch may
        contain; requests beyond it wait for the next batch.
    batch_window_s:
        How long the worker waits after the first queued request for more
        requests to arrive before executing the batch.  A couple of
        milliseconds is enough to coalesce a concurrent burst without adding
        visible latency to a lone request.
    metrics:
        Telemetry registry the stage-latency histograms and serving counters
        land in; defaults to the process-global registry (what
        ``GET /v1/metrics`` serves).  Tests inject private instances.
    """

    def __init__(self, artifact: ModelArtifact,
                 simulation_backend: Optional[str] = None,
                 compile_circuits: Optional[bool] = None,
                 fused_members: Optional[bool] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 max_batch_samples: int = 512,
                 batch_window_s: float = 0.002,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch_samples < 1:
            raise ValueError("max_batch_samples must be positive")
        if batch_window_s < 0:
            raise ValueError("batch_window_s cannot be negative")
        config = artifact.config
        overrides: Dict[str, object] = {}
        if simulation_backend is not None:
            overrides["simulation_backend"] = simulation_backend
        if compile_circuits is not None:
            overrides["compile_circuits"] = compile_circuits
        if fused_members is not None:
            overrides["fused_members"] = fused_members
        if overrides:
            config = config.with_overrides(**overrides)
        self.artifact = artifact
        self.config: QuorumConfig = config
        self.levels: Tuple[int, ...] = tuple(artifact.levels)
        self.normalizer = artifact.build_normalizer()
        self.compiler = compiler if compiler is not None else default_compiler()
        self.max_batch_samples = int(max_batch_samples)
        self.batch_window_s = float(batch_window_s)

        self._members: List[_Member] = [
            _Member(
                artifact=member,
                selected_features=np.asarray(member.selected_features, dtype=int),
                ansatz=member.build_ansatz(config),
                buckets=member.bucket_assignment(),
                reference={int(level): BucketStatistics(
                               means=np.asarray(means, dtype=float),
                               stds=np.asarray(stds, dtype=float))
                           for level, (means, stds) in member.reference.items()},
            )
            for member in artifact.members
        ]
        self._fusable = config.backend in _FUSABLE_BACKENDS
        self._fused_members = bool(
            self._fusable and config.wants_fused_members
            and len(self._members) > 1)
        # Members whose compiled circuits share a structure signature execute
        # as one stacked batch per sweep step; mixed-signature ensembles split
        # into one dispatch per group.  Computed once -- the ansatzes are
        # frozen in the artifact.
        self._member_groups: List[List[int]] = []
        if self._fused_members:
            groups: Dict[Tuple, List[int]] = {}
            for index, member in enumerate(self._members):
                groups.setdefault(plan_structure_key(member), []).append(index)
            self._member_groups = list(groups.values())
        self._exact_engine: Optional[SwapTestEngine] = None
        if self._fusable:
            # Exact probabilities only -- per-request shot noise is applied
            # afterwards from each member's restored RNG, which is what makes
            # coalesced and serial submission bitwise identical.
            self._exact_engine = self._build_engine(shots=None)

        self._lock = threading.Lock()
        # Serializes access to the shared exact engine: the micro-batch worker
        # thread and stateful callers (dedicated sessions, job workers) may
        # sweep concurrently, and engine-internal per-member caches are not
        # synchronized.
        self._engine_lock = threading.Lock()
        self._queue: List[_Request] = []
        self._queue_cond = threading.Condition(self._lock)
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        self._stats = {"requests": 0, "samples": 0, "batches": 0,
                       "coalesced_requests": 0, "stacked_dispatches": 0}
        # Histogram {group size -> stacked dispatches of that size}; stays
        # empty unless cross-member fusion is active.
        self._members_per_dispatch: Dict[int, int] = {}
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_requests = self.metrics.counter(
            "scoring_requests_total", "scoring requests completed")
        self._m_samples = self.metrics.counter(
            "scoring_samples_total", "samples scored")
        self._m_batches = self.metrics.counter(
            "scoring_batches_total", "micro-batches executed")
        self._h_queue_wait = self.metrics.histogram(
            "scoring_queue_wait_seconds",
            "submit-to-batch-start wait in the micro-batch queue")
        self._h_assembly = self.metrics.histogram(
            "scoring_batch_assembly_seconds",
            "stacking coalesced requests into one fused batch")
        self._h_engine = self.metrics.histogram(
            "scoring_engine_seconds",
            "exact probability sweep (the engine compute)")
        self._h_shot_noise = self.metrics.histogram(
            "scoring_shot_noise_seconds",
            "per-member shot-noise draws + deviation scoring")

    # ------------------------------------------------------------ engine setup
    def _build_engine(self, shots: Optional[int],
                      rng: Optional[np.random.Generator] = None
                      ) -> SwapTestEngine:
        config = self.config
        return make_engine(
            config.backend, shots, rng=rng, noisy=config.noisy,
            gate_level_encoding=config.gate_level_encoding,
            num_qubits=config.num_qubits,
            simulation_backend=config.simulation_backend,
            compile_circuits=config.compile_circuits,
            compiler=self.compiler,
        )

    # ---------------------------------------------------------------- scoring
    def _normalize(self, features: Union[np.ndarray, Sequence]) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError(
                "expected a (samples, features) matrix with at least one row")
        if features.shape[1] != self.artifact.num_features:
            raise ValueError(
                f"the model was fitted on {self.artifact.num_features} "
                f"features, got {features.shape[1]}"
            )
        return self.normalizer.transform(features)

    def _member_amplitudes(self, member: _Member,
                           normalized: np.ndarray) -> np.ndarray:
        return batch_amplitudes(normalized[:, member.selected_features],
                                self.config.num_qubits)

    def _exact_member_p1(self, normalized: np.ndarray) -> List[np.ndarray]:
        """Exact ``(levels, samples)`` probabilities, one array per member."""
        engine = self._exact_engine
        assert engine is not None
        if not self._fused_members:
            with self._engine_lock:
                return [
                    engine.p1_levels_batch(
                        self._member_amplitudes(member, normalized),
                        member.ansatz, self.levels)
                    for member in self._members
                ]
        member_p1: List[Optional[np.ndarray]] = [None] * len(self._members)
        dispatched: List[int] = []
        with self._engine_lock:
            for group in self._member_groups:
                stack = np.stack([
                    self._member_amplitudes(self._members[index], normalized)
                    for index in group
                ])
                sweep = engine.p1_levels_member_batch(
                    stack, [self._members[index].ansatz for index in group],
                    self.levels)
                for position, index in enumerate(group):
                    member_p1[index] = sweep[position]
                dispatched.append(len(group))
        with self._lock:
            self._stats["stacked_dispatches"] += len(dispatched)
            for size in dispatched:
                self._members_per_dispatch[size] = (
                    self._members_per_dispatch.get(size, 0) + 1)
        return member_p1

    def _finalize(self, member_p1: List[np.ndarray], mode: str,
                  shot_noise: bool,
                  rngs: Optional[List[np.random.Generator]] = None
                  ) -> ScoreResult:
        """Turn per-member P(1) sweeps for ONE request into summed deviations.

        ``shot_noise=True`` applies each member's binomial draws here (the
        fusable path computed exact probabilities); ``False`` means the engine
        already sampled shots during evolution (statevector trajectories).
        ``rngs`` substitutes caller-owned generators (consumed in place) for
        the per-request restored ones -- the stateful-session path.
        """
        num_samples = member_p1[0].shape[1]
        self._check_replay_size(num_samples, mode)
        finalize_start = time.perf_counter()
        total = np.zeros(num_samples)
        runs = 0
        for index, (member, p1_sweep) in enumerate(zip(self._members,
                                                       member_p1)):
            if shot_noise:
                rng = rngs[index] if rngs is not None else member.fresh_rng()
                p1_sweep = apply_shot_noise(p1_sweep, self.config.shots, rng)
            # Accumulate each member's levels into its own vector first, then
            # add members together -- the exact summation order the detector
            # uses, so replay-mode scores match `fit` bitwise (float addition
            # is not associative).
            member_total = np.zeros(num_samples)
            for position, level in enumerate(self.levels):
                level_p1 = p1_sweep[position]
                if mode == "replay":
                    member_total += bucket_deviations(level_p1, member.buckets)
                else:
                    reference = member.reference[level]
                    member_total += reference_deviations(
                        level_p1, reference.means, reference.stds,
                        live=reference.live)
                runs += 1
            total += member_total
        shot_noise_s = time.perf_counter() - finalize_start
        self._h_shot_noise.observe(shot_noise_s)
        return ScoreResult(scores=total, num_runs=runs, mode=mode,
                           num_samples=num_samples,
                           timings={"shot_noise": shot_noise_s})

    @staticmethod
    def _merge_timings(result: ScoreResult,
                       extra: Dict[str, float]) -> ScoreResult:
        merged = dict(extra)
        merged.update(result.timings or {})
        result.timings = merged
        return result

    def _count_request(self, result: ScoreResult) -> None:
        with self._lock:
            self._stats["requests"] += 1
            self._stats["samples"] += result.num_samples
        self._m_requests.inc()
        self._m_samples.inc(result.num_samples)

    def _score_rows(self, normalized: np.ndarray, mode: str) -> ScoreResult:
        engine_start = time.perf_counter()
        if self._fusable:
            member_p1 = self._exact_member_p1(normalized)
            engine_s = time.perf_counter() - engine_start
            self._h_engine.observe(engine_s)
            result = self._merge_timings(
                self._finalize(member_p1, mode, shot_noise=True),
                {"engine_compute": engine_s})
        else:
            # Shot-based engine: randomness is consumed during evolution, so
            # each member runs with its own freshly restored RNG per request.
            member_p1 = []
            for member in self._members:
                engine = self._build_engine(self.config.shots,
                                            rng=member.fresh_rng())
                member_p1.append(engine.p1_levels_batch(
                    self._member_amplitudes(member, normalized),
                    member.ansatz, self.levels))
            engine_s = time.perf_counter() - engine_start
            self._h_engine.observe(engine_s)
            result = self._merge_timings(
                self._finalize(member_p1, mode, shot_noise=False),
                {"engine_compute": engine_s})
        self._count_request(result)
        return result

    def score(self, features: Union[np.ndarray, Sequence],
              mode: str = "reference") -> ScoreResult:
        """Score a batch of raw feature rows synchronously (no coalescing)."""
        self._check_mode(mode)
        normalized = self._normalize(features)
        self._check_replay_size(normalized.shape[0], mode)
        return self._score_rows(normalized, mode)

    # ------------------------------------------------------- stateful scoring
    def fresh_member_rngs(self) -> List[np.random.Generator]:
        """One restored post-planning generator per member.

        The seed state a *dedicated session* holds: passing these generators
        to :meth:`score_stateful` for every sequential request makes the
        member RNG streams advance across the session exactly as one long
        fit-time sweep would.
        """
        return [member.fresh_rng() for member in self._members]

    def score_stateful(self, features: Union[np.ndarray, Sequence],
                       rngs: List[np.random.Generator],
                       mode: str = "reference") -> ScoreResult:
        """Score with caller-owned per-member generators, consumed in place.

        Unlike :meth:`score` (which restores each member's RNG from the
        artifact *per request*, making requests independent), this advances
        the supplied generators -- the contract dedicated sessions build on:

        * the **first** request of a fresh generator set consumes the RNG
          exactly like :meth:`score`, so a full-training-set ``replay`` as
          the opening request is bitwise identical to the detector's fit;
        * two generator sets fed the same request sequence produce
          bitwise-identical score sequences (sticky determinism).

        The caller is responsible for sequencing: concurrent calls sharing
        one generator set would interleave draws nondeterministically.
        """
        self._check_mode(mode)
        if len(rngs) != len(self._members):
            raise ValueError(
                f"expected {len(self._members)} member generators, "
                f"got {len(rngs)}")
        normalized = self._normalize(features)
        self._check_replay_size(normalized.shape[0], mode)
        if self._fusable:
            result = self._finalize(self._exact_member_p1(normalized), mode,
                                    shot_noise=True, rngs=rngs)
        else:
            # Trajectory engines consume the generator during evolution, so
            # handing the session's generator to the engine *is* the sticky
            # stream (no post-hoc noise application).
            member_p1 = []
            for member, rng in zip(self._members, rngs):
                engine = self._build_engine(self.config.shots, rng=rng)
                member_p1.append(engine.p1_levels_batch(
                    self._member_amplitudes(member, normalized),
                    member.ansatz, self.levels))
            result = self._finalize(member_p1, mode, shot_noise=False)
        self._count_request(result)
        return result

    # ----------------------------------------------------------- micro-batching
    def submit(self, features: Union[np.ndarray, Sequence],
               mode: str = "reference") -> "Future[ScoreResult]":
        """Queue a request for micro-batched execution; returns a future.

        Concurrent submissions are coalesced into one fused batch per member;
        results are bitwise identical to calling :meth:`score` per request.
        """
        self._check_mode(mode)
        normalized = self._normalize(features)
        self._check_replay_size(normalized.shape[0], mode)
        request = _Request(normalized, mode)
        with self._queue_cond:
            if self._closed:
                raise RuntimeError("the scorer has been closed")
            self._queue.append(request)
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(target=self._worker_loop,
                                                name="quorum-scorer",
                                                daemon=True)
                self._worker.start()
            self._queue_cond.notify_all()
        return request.future

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in SCORING_MODES:
            raise ValueError(
                f"unknown scoring mode {mode!r}; expected one of {SCORING_MODES}")

    def _check_replay_size(self, num_samples: int, mode: str) -> None:
        """Reject a wrong-sized replay request *before* any simulation runs."""
        if mode == "replay" and num_samples != self.artifact.num_samples:
            raise ValueError(
                f"replay mode requires the full training set of "
                f"{self.artifact.num_samples} samples (got {num_samples}); "
                "use mode='reference' for unseen data"
            )

    def _drain_batch(self) -> List[_Request]:
        """Pop queued requests up to the sample budget (at least one)."""
        batch: List[_Request] = []
        budget = self.max_batch_samples
        while self._queue:
            pending = self._queue[0]
            rows = pending.normalized.shape[0]
            if batch and rows > budget:
                break
            batch.append(self._queue.pop(0))
            budget -= rows
        return batch

    def _worker_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._queue and not self._closed:
                    self._queue_cond.wait()
                if self._closed and not self._queue:
                    return
            # Let a concurrent burst accumulate before draining, so the fused
            # batch amortizes the per-member sweep over many requests.
            if self.batch_window_s:
                time.sleep(self.batch_window_s)
            with self._queue_cond:
                batch = self._drain_batch()
            if batch:
                self._execute_batch(batch)

    def _execute_batch(self, batch: List[_Request]) -> None:
        batch = [request for request in batch
                 if not request.future.cancelled()]
        if not batch:
            return
        batch_start = time.perf_counter()
        queue_waits = {id(request): batch_start - request.enqueued_at
                      for request in batch}
        for wait_s in queue_waits.values():
            self._h_queue_wait.observe(wait_s)
        with self._lock:
            self._stats["batches"] += 1
            self._stats["coalesced_requests"] += len(batch)
        self._m_batches.inc()
        if not self._fusable or len(batch) == 1:
            for request in batch:
                self._resolve(
                    request,
                    lambda req=request: self._merge_timings(
                        self._score_rows(req.normalized, req.mode),
                        {"queue_wait": queue_waits[id(req)]}))
            return
        try:
            assembly_start = time.perf_counter()
            stacked = np.concatenate([request.normalized for request in batch])
            assembly_s = time.perf_counter() - assembly_start
            self._h_assembly.observe(assembly_s)
            engine_start = time.perf_counter()
            member_p1 = self._exact_member_p1(stacked)
            engine_s = time.perf_counter() - engine_start
            self._h_engine.observe(engine_s)
        except Exception as error:  # pragma: no cover - defensive
            for request in batch:
                if not request.future.cancelled():
                    try:
                        request.future.set_exception(error)
                    except Exception:
                        pass
            return
        offset = 0
        for request in batch:
            rows = request.normalized.shape[0]
            window = slice(offset, offset + rows)
            offset += rows
            slices = [p1[:, window] for p1 in member_p1]
            # Batch-level spans (assembly, engine) are shared by every
            # coalesced request; queue wait is each request's own.
            stages = {"queue_wait": queue_waits[id(request)],
                      "batch_assembly": assembly_s,
                      "engine_compute": engine_s}
            self._resolve(request,
                          lambda s=slices, req=request, t=stages:
                          self._finalize_counted(s, req.mode, t))

    def _finalize_counted(self, member_p1: List[np.ndarray], mode: str,
                          stage_timings: Optional[Dict[str, float]] = None
                          ) -> ScoreResult:
        result = self._finalize(member_p1, mode, shot_noise=True)
        if stage_timings:
            result = self._merge_timings(result, stage_timings)
        self._count_request(result)
        return result

    @staticmethod
    def _resolve(request: _Request, producer) -> None:
        future = request.future
        if future.cancelled():
            # The client gave up (e.g. an HTTP timeout); skip the work.
            return
        try:
            result = producer()
        except Exception as error:
            if not future.cancelled():
                try:
                    future.set_exception(error)
                except Exception:  # racing cancel between check and set
                    pass
            return
        if not future.cancelled():
            try:
                future.set_result(result)
            except Exception:  # racing cancel between check and set
                pass

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the micro-batch worker; queued requests are still completed."""
        with self._queue_cond:
            self._closed = True
            self._queue_cond.notify_all()
            worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=10.0)

    def __enter__(self) -> "OnlineScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- diagnostics
    def diagnostics(self) -> Dict[str, object]:
        """Operator diagnostics: model summary, serving counters, cache stats.

        Served verbatim by ``GET /model`` so operators can verify warm-cache
        serving (``compiler_cache.hits`` growing while ``compiles`` stays
        flat across requests).
        """
        with self._lock:
            serving = dict(self._stats)
            members_per_dispatch = dict(self._members_per_dispatch)
        stats = self.compiler.stats
        return {
            "model": self.artifact.summary(),
            "serving": {
                **serving,
                "max_batch_samples": self.max_batch_samples,
                "batch_window_s": self.batch_window_s,
                "micro_batch_fusion": self._fusable,
                "fused_members": self._fused_members,
                "members_per_dispatch": members_per_dispatch,
            },
            "compiler_cache": {
                "compiles": stats.compiles,
                "group_compiles": stats.group_compiles,
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": self.compiler.cache_size(),
                "bytes": self.compiler.cache_bytes(),
            },
        }
