"""Closed-loop load testing of one ``serve`` process or a replica fleet.

The ROADMAP's "millions of users" story needs numbers, not adjectives.  This
module is the measuring instrument, stdlib + numpy only:

* :func:`run_closed_loop` -- a pool of N concurrent **closed-loop** workers
  (each issues its next request only after the previous one completed, the
  standard saturation-measurement discipline) over persistent HTTP
  connections, capturing per-request latency and errors and reducing them to
  throughput + p50/p95/p99.
* :class:`ReplicaFleet` -- spawns K real ``quorum-repro serve`` subprocesses
  on ephemeral ports (scraping the bound port from the startup line) and
  tears them down deterministically; every replica loads the same frozen
  artifact, which is exactly the shared-nothing state a fleet needs.
* :func:`run_loadtest` -- the orchestrator behind the ``quorum-repro
  loadtest`` CLI verb: sweeps concurrency levels (and optionally
  ``--batch-window-ms`` values) against a 1-replica baseline and the
  K-replica fleet behind a :class:`~repro.serving.proxy.RoundRobinProxy`,
  records the saturation curve into a JSON report, computes the 1->K
  scale-out efficiency, and derives batching suggestions from the measured
  saturation knee (:func:`find_knee` / :func:`suggest_batching`).

Everything is CI-safe by construction: ephemeral ports, bounded startup
waits, and subprocess cleanup in ``finally`` (the integration-test style of
runtime-server projects).
"""

from __future__ import annotations

import collections
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.artifact import ModelArtifact, load_model
from repro.serving.proxy import RoundRobinProxy

__all__ = [
    "percentile",
    "summarize_latencies",
    "run_closed_loop",
    "ReplicaProcess",
    "ReplicaSpawnError",
    "spawn_replica",
    "ReplicaFleet",
    "find_knee",
    "suggest_batching",
    "run_loadtest",
    "REPORT_VERSION",
]

#: Schema marker of the JSON report produced by :func:`run_loadtest`.
REPORT_VERSION = 1

#: How many trailing stderr lines each replica keeps for post-mortems.
STDERR_TAIL_LINES = 40

#: Marginal-throughput gain below which added concurrency has saturated the
#: service: the knee of the saturation curve.
KNEE_GAIN_THRESHOLD = 0.10

#: Bounds on the auto-suggested micro-batch sample budget.
MIN_SUGGESTED_BATCH = 32
MAX_SUGGESTED_BATCH = 4096


# --------------------------------------------------------------------- metrics
def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    position = (len(sorted_values) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (sorted_values[lower] * (1.0 - fraction)
            + sorted_values[upper] * fraction)


def summarize_latencies(latencies_s: Sequence[float]) -> Dict[str, float]:
    """``{mean, p50, p95, p99, max}`` in milliseconds."""
    ordered = sorted(latencies_s)
    if not ordered:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": sum(ordered) / len(ordered) * 1e3,
        "p50": percentile(ordered, 50.0) * 1e3,
        "p95": percentile(ordered, 95.0) * 1e3,
        "p99": percentile(ordered, 99.0) * 1e3,
        "max": ordered[-1] * 1e3,
    }


# ----------------------------------------------------------- closed-loop pool
class _WorkerStats:
    __slots__ = ("latencies", "errors", "last_completion")

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.errors = 0
        self.last_completion = 0.0


def run_closed_loop(base_url: str, path: str, body: bytes, *,
                    concurrency: int, duration_s: float,
                    warmup_s: float = 0.0, method: str = "POST",
                    timeout_s: float = 120.0) -> Dict[str, object]:
    """Drive ``method path`` with N closed-loop workers for ``duration_s``.

    Workers reuse one persistent connection each (reconnecting on failure)
    and only requests *started* after the warmup window count.  Returns a
    run record: request/error counts, throughput, and the latency summary.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    host, _, port = base_url.split("//", 1)[-1].rstrip("/").rpartition(":")
    headers = {"Content-Type": "application/json"}
    start_event = threading.Event()
    clock_box: Dict[str, float] = {}
    stats = [_WorkerStats() for _ in range(concurrency)]

    def worker(my_stats: _WorkerStats) -> None:
        connection = http.client.HTTPConnection(host, int(port),
                                                timeout=timeout_s)
        start_event.wait()
        measure_start = clock_box["measure_start"]
        deadline = clock_box["deadline"]
        try:
            while True:
                begin = time.perf_counter()
                if begin >= deadline:
                    return
                measured = begin >= measure_start
                try:
                    connection.request(method, path, body=body,
                                       headers=headers)
                    response = connection.getresponse()
                    response.read()
                    ok = 200 <= response.status < 300
                except (OSError, http.client.HTTPException):
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, int(port), timeout=timeout_s)
                    if measured:
                        my_stats.errors += 1
                    continue
                end = time.perf_counter()
                if not measured:
                    continue
                if ok:
                    my_stats.latencies.append(end - begin)
                    my_stats.last_completion = end
                else:
                    my_stats.errors += 1
        finally:
            connection.close()

    threads = [threading.Thread(target=worker, args=(stat,), daemon=True)
               for stat in stats]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    clock_box["measure_start"] = start + warmup_s
    clock_box["deadline"] = start + warmup_s + duration_s
    start_event.set()
    for thread in threads:
        thread.join(timeout=warmup_s + duration_s + timeout_s + 30.0)

    latencies = [value for stat in stats for value in stat.latencies]
    errors = sum(stat.errors for stat in stats)
    last = max((stat.last_completion for stat in stats), default=0.0)
    window = max(last - clock_box["measure_start"], 1e-9)
    return {
        "concurrency": concurrency,
        "duration_s": round(window, 4),
        "requests": len(latencies),
        "errors": errors,
        "throughput_rps": (len(latencies) / window) if latencies else 0.0,
        "latency_ms": summarize_latencies(latencies),
    }


# -------------------------------------------------------------- replica fleet
class ReplicaSpawnError(RuntimeError):
    """A replica failed to come up.

    Distinguishes *crashed on boot* (``exit_code`` is set and ``stderr_tail``
    carries the subprocess's last stderr lines) from *slow start* (neither is
    set; the startup deadline simply elapsed) -- the fleet supervisor feeds
    the former into its crash-loop circuit breaker.
    """

    def __init__(self, message: str, exit_code: Optional[int] = None,
                 stderr_tail: str = "") -> None:
        super().__init__(message)
        self.exit_code = exit_code
        self.stderr_tail = stderr_tail


def _replica_environment() -> Dict[str, str]:
    """The parent's environment with the repro package importable."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else os.pathsep.join([package_root, existing]))
    return env


class ReplicaProcess:
    """One live ``quorum-repro serve`` subprocess plus its watchdog readers.

    Owns the pipes: a daemon thread drains stdout (so a chatty server can
    never fill the pipe and stall) and another keeps a bounded tail of
    stderr for post-mortems.  Use :func:`spawn_replica` to create one.
    """

    def __init__(self, process: subprocess.Popen, host: str,
                 port: int) -> None:
        self.process = process
        self.host = host
        self.port = int(port)
        self._stderr_tail: Deque[str] = collections.deque(
            maxlen=STDERR_TAIL_LINES)
        self._readers: List[threading.Thread] = []
        for stream, sink in ((process.stdout, None),
                             (process.stderr, self._stderr_tail)):
            if stream is None:
                continue
            thread = threading.Thread(target=self._pump,
                                      args=(stream, sink), daemon=True)
            thread.start()
            self._readers.append(thread)

    @staticmethod
    def _pump(stream, sink: Optional[Deque[str]]) -> None:
        try:
            for line in stream:
                if sink is not None:
                    sink.append(line.rstrip("\n"))
        except (OSError, ValueError):
            pass  # pipe closed during reaping

    # ------------------------------------------------------------- observation
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def pid(self) -> int:
        return self.process.pid

    def poll(self) -> Optional[int]:
        """The exit code if the replica has died, else ``None``."""
        return self.process.poll()

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def stderr_tail(self) -> str:
        """The last captured stderr lines (joined), for diagnostics."""
        return "\n".join(self._stderr_tail)

    def exit_summary(self) -> Dict[str, object]:
        """``{"exit_code", "stderr_tail"}`` for a dead (or dying) replica."""
        return {"exit_code": self.process.poll(),
                "stderr_tail": self.stderr_tail()}

    # --------------------------------------------------------------- lifecycle
    def send_signal(self, signum: int) -> None:
        """Deliver a signal (SIGSTOP/SIGCONT/SIGKILL...) to the replica."""
        self.process.send_signal(signum)

    def terminate(self) -> None:
        self.process.terminate()

    def kill(self) -> None:
        self.process.kill()

    def wait(self, timeout_s: Optional[float] = None) -> int:
        return self.process.wait(timeout=timeout_s)

    def close(self, term_timeout_s: float = 15.0,
              kill_timeout_s: float = 10.0) -> int:
        """Graceful stop: SIGTERM, bounded wait, then SIGKILL; returns the
        exit code.

        SIGTERM triggers the server's drain path (finish in-flight requests,
        then exit 0); SIGKILL is the backstop for a wedged process.  A
        SIGSTOP-ped replica cannot run its SIGTERM handler, so it is resumed
        first -- otherwise "close a hung replica" would always escalate to
        SIGKILL and report a dirty exit for a process that was merely paused.
        """
        try:
            if self.alive:
                try:
                    self.process.send_signal(signal.SIGCONT)
                except (OSError, ProcessLookupError):
                    pass
                self.process.terminate()
                try:
                    self.process.wait(timeout=term_timeout_s)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait(timeout=kill_timeout_s)
            else:
                self.process.wait(timeout=kill_timeout_s)
        finally:
            for stream in (self.process.stdout, self.process.stderr):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass
            for thread in self._readers:
                thread.join(timeout=5.0)
        return self.process.returncode


def spawn_replica(model_path: Union[str, Path], *,
                  host: str = "127.0.0.1",
                  batch_window_ms: float = 2.0,
                  max_batch_samples: int = 512,
                  startup_timeout_s: float = 120.0,
                  debug_hooks: bool = False,
                  extra_args: Sequence[str] = ()) -> ReplicaProcess:
    """Spawn one ``quorum-repro serve`` subprocess on an ephemeral port.

    Scrapes the bound port from the CLI's ``serving ... on http://host:port``
    startup line.  A replica that dies *before* printing it is reported
    immediately -- :class:`ReplicaSpawnError` carries the exit code and the
    stderr tail -- instead of burning the whole startup deadline, so callers
    can distinguish "crashed on boot" from "slow start".
    """
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--model", str(model_path),
        "--host", host, "--port", "0",
        "--batch-window-ms", str(batch_window_ms),
        "--max-batch-samples", str(max_batch_samples),
    ]
    if debug_hooks:
        command.append("--debug-hooks")
    command.extend(extra_args)
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE, text=True,
                               env=_replica_environment())
    stderr_tail: Deque[str] = collections.deque(maxlen=STDERR_TAIL_LINES)
    stderr_thread = threading.Thread(
        target=ReplicaProcess._pump, args=(process.stderr, stderr_tail),
        daemon=True)
    stderr_thread.start()

    box: Dict[str, str] = {}

    def read_startup_line() -> None:
        box["line"] = process.stdout.readline()

    reader = threading.Thread(target=read_startup_line, daemon=True)
    reader.start()

    def fail(message: str, exit_code: Optional[int] = None
             ) -> ReplicaSpawnError:
        if process.poll() is None:
            process.kill()
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            pass
        stderr_thread.join(timeout=5.0)
        for stream in (process.stdout, process.stderr):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        tail = "\n".join(stderr_tail)
        suffix = f"; stderr tail:\n{tail}" if tail else ""
        return ReplicaSpawnError(message + suffix, exit_code=exit_code,
                                 stderr_tail=tail)

    deadline = time.monotonic() + startup_timeout_s
    while True:
        reader.join(timeout=0.05)
        if not reader.is_alive():
            break
        exit_code = process.poll()
        if exit_code is not None:
            # Crashed on boot: readline will deliver EOF momentarily; give
            # it a beat so a raced startup line is not misreported.
            reader.join(timeout=1.0)
            if box.get("line", "").strip():
                break
            raise fail(f"replica crashed on boot with exit code {exit_code}",
                       exit_code=exit_code)
        if time.monotonic() >= deadline:
            raise fail(f"replica startup exceeded {startup_timeout_s:.0f}s "
                       f"(process still running: slow start, not a crash)")
    line = box.get("line", "")
    if " on http://" not in line:
        # EOF (or garbage) on stdout: the process is dying or broken.  Give
        # the exit code a moment to materialize -- it is the diagnosis.
        try:
            exit_code: Optional[int] = process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            exit_code = process.poll()
        raise fail(f"replica did not report a bound port (got {line!r}, "
                   f"exit code {exit_code})", exit_code=exit_code)
    address = line.rsplit(" on http://", 1)[1].strip()
    bound_host, _, bound_port = address.rpartition(":")
    return ReplicaProcess(process, bound_host, int(bound_port))


class ReplicaFleet:
    """K real ``quorum-repro serve`` subprocesses on ephemeral ports.

    Every replica serves the same frozen model artifact -- the shared-nothing
    scale-out unit.  ``start`` spawns each replica via :func:`spawn_replica`;
    ``close`` sends SIGTERM and reaps (killing only on a missed shutdown
    deadline), returning the exit codes so callers can assert clean shutdown.
    The fleet supervisor builds on the same :class:`ReplicaProcess` handles
    for per-replica lifecycle control.
    """

    def __init__(self, model_path: Union[str, Path], replicas: int = 1, *,
                 batch_window_ms: float = 2.0, max_batch_samples: int = 512,
                 host: str = "127.0.0.1",
                 startup_timeout_s: float = 120.0,
                 debug_hooks: bool = False) -> None:
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        self.model_path = Path(model_path)
        self.replicas = int(replicas)
        self.batch_window_ms = float(batch_window_ms)
        self.max_batch_samples = int(max_batch_samples)
        self.host = host
        self.startup_timeout_s = float(startup_timeout_s)
        self.debug_hooks = bool(debug_hooks)
        self._replicas: List[ReplicaProcess] = []

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [(replica.host, replica.port) for replica in self._replicas]

    @property
    def handles(self) -> List[ReplicaProcess]:
        """The live replica handles (for fault injection and supervision)."""
        return list(self._replicas)

    def spawn_one(self) -> ReplicaProcess:
        """One more replica with this fleet's settings (not yet tracked)."""
        return spawn_replica(
            self.model_path, host=self.host,
            batch_window_ms=self.batch_window_ms,
            max_batch_samples=self.max_batch_samples,
            startup_timeout_s=self.startup_timeout_s,
            debug_hooks=self.debug_hooks)

    def start(self) -> "ReplicaFleet":
        if self._replicas:
            raise RuntimeError("the fleet is already started")
        try:
            for _ in range(self.replicas):
                self._replicas.append(self.spawn_one())
        except Exception:
            self.close()
            raise
        return self

    def close(self) -> List[int]:
        """Terminate every replica; returns their exit codes (0 = clean)."""
        exit_codes = [replica.close() for replica in self._replicas]
        self._replicas = []
        return exit_codes

    def __enter__(self) -> "ReplicaFleet":
        if not self._replicas:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------- knee + batch suggestions
def find_knee(points: Sequence[Tuple[int, float]]) -> Tuple[int, float]:
    """The saturation knee of ``[(concurrency, throughput)]`` (ascending).

    Walking the curve in concurrency order, the knee is the last point before
    the marginal throughput gain drops below :data:`KNEE_GAIN_THRESHOLD`
    (additional closed-loop clients now only add queueing latency).  A curve
    that never flattens returns its last point.
    """
    if not points:
        raise ValueError("cannot find the knee of an empty curve")
    knee = points[0]
    for previous, current in zip(points, points[1:]):
        _, previous_tp = previous
        _, current_tp = current
        if previous_tp > 0 and (current_tp / previous_tp - 1.0
                                ) < KNEE_GAIN_THRESHOLD:
            return previous
        knee = current
    return knee


def _next_power_of_two(value: int) -> int:
    return 1 << max(int(value) - 1, 0).bit_length() if value > 1 else 1


def suggest_batching(runs: Sequence[Dict[str, object]],
                     samples_per_request: int) -> Dict[str, object]:
    """Derive batching knobs from measured saturation curves.

    For the largest fleet in ``runs``, each swept ``batch_window_ms`` value
    yields one saturation curve; the window whose knee throughput is highest
    wins.  The suggested ``max_batch_samples`` is the sample volume in
    flight at the knee (knee concurrency x samples per request, rounded up
    to a power of two) -- a smaller budget would split saturated batches,
    a much larger one only adds queueing.
    """
    fleet = max(int(run["replicas"]) for run in runs)
    best: Optional[Dict[str, object]] = None
    for window in sorted({float(run["batch_window_ms"]) for run in runs}):
        curve = sorted(
            (int(run["concurrency"]), float(run["throughput_rps"]))
            for run in runs
            if int(run["replicas"]) == fleet
            and float(run["batch_window_ms"]) == window)
        if not curve:
            continue
        knee_concurrency, knee_throughput = find_knee(curve)
        if best is None or knee_throughput > best["peak_throughput_rps"]:
            best = {
                "knee_concurrency": knee_concurrency,
                "batch_window_ms": window,
                "peak_throughput_rps": knee_throughput,
            }
    assert best is not None  # runs is non-empty by contract
    in_flight = int(best["knee_concurrency"]) * int(samples_per_request)
    best["max_batch_samples"] = min(
        max(_next_power_of_two(in_flight), MIN_SUGGESTED_BATCH),
        MAX_SUGGESTED_BATCH)
    return best


# ---------------------------------------------------------------- orchestrator
def _fetch_json(url: str, timeout_s: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.load(response)


#: The server-side stage histograms the loadtest scrapes per replica (from
#: ``/v1/metrics``) to split observed latency into batching delay vs engine
#: saturation.
_STAGE_METRICS = (("queue_wait", "scoring_queue_wait_seconds"),
                  ("engine", "scoring_engine_seconds"))


def _scrape_stage_totals(addresses: Sequence[Tuple[str, int]]
                         ) -> Dict[str, Optional[Dict[str, float]]]:
    """Per-replica ``sum``/``count`` of the stage histograms right now.

    ``{"host:port": {queue_wait_sum, queue_wait_count, engine_sum,
    engine_count}}``; a replica whose scrape fails maps to ``None`` (the
    split is then computed over the replicas that did answer).
    """
    totals: Dict[str, Optional[Dict[str, float]]] = {}
    for host, port in addresses:
        address = f"{host}:{port}"
        try:
            snapshot = _fetch_json(f"http://{host}:{port}/v1/metrics")
        except (OSError, ValueError):
            totals[address] = None
            continue
        histograms = snapshot.get("histograms", {})
        entry: Dict[str, float] = {}
        for key, name in _STAGE_METRICS:
            histogram = histograms.get(name) or {}
            entry[f"{key}_sum"] = float(histogram.get("sum") or 0.0)
            entry[f"{key}_count"] = float(histogram.get("count") or 0)
        totals[address] = entry
    return totals


def _server_side_split(before: Dict[str, Optional[Dict[str, float]]],
                       after: Dict[str, Optional[Dict[str, float]]]
                       ) -> Dict[str, object]:
    """Aggregate stage-histogram deltas into the queue-vs-compute split.

    ``queue_wait_share`` near 1 means requests spend the run waiting on the
    micro-batcher (batching delay: widen the window or grow the fleet);
    near 0 means the engine itself is the bottleneck (compute saturation).
    """
    deltas = {f"{key}_{field}": 0.0
              for key, _ in _STAGE_METRICS for field in ("sum", "count")}
    for address, end in after.items():
        start = before.get(address)
        if end is None or start is None:
            continue
        for field in deltas:
            deltas[field] += max(0.0, end[field] - start[field])
    queue_sum, engine_sum = deltas["queue_wait_sum"], deltas["engine_sum"]
    busy = queue_sum + engine_sum
    return {
        "scored_requests": int(deltas["queue_wait_count"]),
        "queue_wait_ms_mean": (
            round(queue_sum / deltas["queue_wait_count"] * 1e3, 4)
            if deltas["queue_wait_count"] else None),
        "engine_ms_mean": (
            round(engine_sum / deltas["engine_count"] * 1e3, 4)
            if deltas["engine_count"] else None),
        "queue_wait_share": (round(queue_sum / busy, 4) if busy > 0
                             else None),
    }


def run_loadtest(model_path: Union[str, Path], *,
                 replicas: int = 1,
                 concurrencies: Sequence[int] = (8,),
                 duration_s: float = 2.0,
                 mode: str = "reference",
                 samples_per_request: int = 4,
                 batch_windows_ms: Sequence[float] = (2.0,),
                 max_batch_samples: int = 512,
                 warmup_s: float = 0.25,
                 seed: int = 0,
                 replay_samples: Optional[np.ndarray] = None,
                 single_replica_baseline: bool = True,
                 request_timeout_s: float = 120.0) -> Dict[str, object]:
    """Measure a replica fleet under closed-loop load; return the report.

    Spawns a 1-replica baseline (when ``single_replica_baseline`` and
    ``replicas > 1``) and the K-replica fleet behind an in-process
    round-robin proxy, sweeps every ``(batch_window_ms, concurrency)``
    combination for ``duration_s`` each, and reduces the measurements to a
    JSON-serializable report: the saturation curve, per-replica request
    distribution, 1->K scale-out efficiency, and knee-derived batching
    suggestions.
    """
    if mode not in ("reference", "replay"):
        raise ValueError(f"unknown loadtest mode {mode!r}")
    artifact: ModelArtifact = load_model(model_path)
    if mode == "replay":
        if replay_samples is None:
            raise ValueError("replay mode needs the training set "
                             "(replay_samples)")
        samples = np.asarray(replay_samples, dtype=float)
        if samples.shape[0] != artifact.num_samples:
            raise ValueError(
                f"replay mode requires the full training set of "
                f"{artifact.num_samples} samples (got {samples.shape[0]})")
    else:
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(int(samples_per_request),
                                   artifact.num_features))
    request_samples = samples.shape[0]
    body = json.dumps({"samples": samples.tolist(),
                       "mode": mode}).encode("utf-8")

    concurrencies = sorted({int(value) for value in concurrencies})
    if not concurrencies or concurrencies[0] < 1:
        raise ValueError("concurrencies must be positive integers")
    batch_windows_ms = sorted({float(value) for value in batch_windows_ms})
    replica_counts = [replicas]
    if single_replica_baseline and replicas > 1:
        replica_counts = [1, replicas]

    runs: List[Dict[str, object]] = []
    exit_codes: List[int] = []
    for window in batch_windows_ms:
        for count in replica_counts:
            fleet = ReplicaFleet(model_path, count, batch_window_ms=window,
                                 max_batch_samples=max_batch_samples)
            try:
                fleet.start()
                with RoundRobinProxy(fleet.addresses) as proxy:
                    health = proxy.check_backends()
                    unhealthy = [address for address, ok in health.items()
                                 if not ok]
                    if unhealthy:
                        raise RuntimeError(
                            f"replicas failed their health check: {unhealthy}")
                    liveness = _fetch_json(proxy.base_url + "/v1/healthz")
                    score_path = (f"/v1/models/{liveness['default_model']}"
                                  f"/score")
                    for concurrency in concurrencies:
                        before = proxy.request_counts()
                        stage_before = _scrape_stage_totals(fleet.addresses)
                        result = run_closed_loop(
                            proxy.base_url, score_path, body,
                            concurrency=concurrency, duration_s=duration_s,
                            warmup_s=warmup_s, timeout_s=request_timeout_s)
                        after = proxy.request_counts()
                        stage_after = _scrape_stage_totals(fleet.addresses)
                        result.update({
                            "replicas": count,
                            "batch_window_ms": window,
                            "per_replica_requests": {
                                address: after[address] - before[address]
                                for address in after},
                            # Server-side queue-wait vs compute split over
                            # the run (scraped from each replica's
                            # /v1/metrics), so knee detection can tell
                            # batching delay from engine saturation.
                            "server_side": _server_side_split(stage_before,
                                                              stage_after),
                        })
                        runs.append(result)
            finally:
                exit_codes.extend(fleet.close())

    report: Dict[str, object] = {
        "version": REPORT_VERSION,
        "generated_at": time.time(),
        "config": {
            "model_path": str(model_path),
            "replicas": replicas,
            "concurrencies": concurrencies,
            "duration_s": duration_s,
            "warmup_s": warmup_s,
            "mode": mode,
            "samples_per_request": request_samples,
            "batch_windows_ms": batch_windows_ms,
            "max_batch_samples": max_batch_samples,
            "seed": seed,
        },
        "runs": runs,
        "scale_out": _scale_out(runs, replicas),
        "suggestion": suggest_batching(runs, request_samples),
        "replica_exits": {
            "exit_codes": exit_codes,
            "clean": all(code == 0 for code in exit_codes),
        },
    }
    return report


def _scale_out(runs: Sequence[Dict[str, object]],
               replicas: int) -> Optional[Dict[str, object]]:
    """1->K efficiency at the heaviest measured load, when both were run."""
    if replicas <= 1:
        return None
    single = [run for run in runs if int(run["replicas"]) == 1]
    fleet = [run for run in runs if int(run["replicas"]) == replicas]
    if not single or not fleet:
        return None

    def best(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
        peak = max(int(run["concurrency"]) for run in records)
        candidates = [run for run in records
                      if int(run["concurrency"]) == peak]
        return max(candidates, key=lambda run: float(run["throughput_rps"]))

    single_best, fleet_best = best(single), best(fleet)
    single_tp = float(single_best["throughput_rps"])
    fleet_tp = float(fleet_best["throughput_rps"])
    return {
        "baseline_replicas": 1,
        "fleet_replicas": replicas,
        "concurrency": int(fleet_best["concurrency"]),
        "throughput_single_rps": single_tp,
        "throughput_fleet_rps": fleet_tp,
        "speedup": (fleet_tp / single_tp) if single_tp > 0 else 0.0,
        "efficiency": (fleet_tp / (replicas * single_tp)
                       if single_tp > 0 else 0.0),
    }
