"""Pure-state representation and gate application kernels.

States are stored as flat complex vectors of length ``2**n`` indexed in
little-endian order: basis index ``i`` encodes qubit ``q``'s bit as
``(i >> q) & 1``.  Internally, gate application reshapes to an ``n``-axis tensor
where axis ``n - 1 - q`` corresponds to qubit ``q`` (numpy's reshape places the most
significant bit on the first axis).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "Statevector",
    "apply_unitary_to_tensor",
    "expand_gate",
    "bitstring_from_index",
    "index_from_bitstring",
]


def bitstring_from_index(index: int, num_bits: int) -> str:
    """Little-endian bitstring for ``index`` (qubit 0 is the rightmost character)."""
    return format(index, f"0{num_bits}b")


def index_from_bitstring(bitstring: str) -> int:
    """Inverse of :func:`bitstring_from_index`."""
    return int(bitstring, 2)


def apply_unitary_to_tensor(tensor: np.ndarray, gate: np.ndarray,
                            qubits: Sequence[int], num_qubits: int,
                            axis_offset: int = 0) -> np.ndarray:
    """Apply ``gate`` to the tensor representation of a state.

    Parameters
    ----------
    tensor:
        State tensor with at least ``num_qubits`` axes of dimension 2.  For a
        statevector the tensor has exactly ``num_qubits`` axes; for a density matrix
        the row and column indices are handled with two calls using
        ``axis_offset``.
    gate:
        ``2^k x 2^k`` unitary whose row/column index treats the first listed qubit
        as the least-significant bit.
    qubits:
        Target qubits (little-endian significance order).
    num_qubits:
        Total number of qubits represented by the axes block.
    axis_offset:
        Offset of the axes block inside ``tensor`` (0 for row indices, ``num_qubits``
        for the column indices of a density matrix).
    """
    k = len(qubits)
    gate_tensor = np.asarray(gate, dtype=complex).reshape((2,) * (2 * k))
    # Contract the gate's input axes with the state axes of the target qubits.  The
    # gate tensor's input axes are ordered most-significant-first, i.e. they
    # correspond to reversed(qubits).
    input_axes = list(range(k, 2 * k))
    state_axes = [axis_offset + num_qubits - 1 - q for q in reversed(qubits)]
    moved = np.tensordot(gate_tensor, tensor, axes=(input_axes, state_axes))
    # tensordot puts the gate's output axes first; move them back into place.
    return np.moveaxis(moved, range(k), state_axes)


def expand_gate(gate: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit gate into the full ``2^n x 2^n`` unitary."""
    dim = 2 ** num_qubits
    identity = np.eye(dim, dtype=complex)
    columns = identity.reshape((dim,) + (2,) * num_qubits)
    transformed = np.empty_like(columns)
    for col in range(dim):
        transformed[col] = apply_unitary_to_tensor(
            columns[col], gate, qubits, num_qubits
        )
    # Row of the full matrix indexes the output state; we built U e_col per column.
    return transformed.reshape(dim, dim).T.copy()


class Statevector:
    """A pure quantum state with convenience methods used across the package."""

    def __init__(self, data: Sequence[complex], num_qubits: Optional[int] = None):
        vector = np.asarray(data, dtype=complex).ravel()
        size = vector.shape[0]
        inferred = int(np.log2(size)) if size else 0
        if 2 ** inferred != size:
            raise ValueError(f"statevector length {size} is not a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise ValueError(
                f"num_qubits={num_qubits} inconsistent with vector of length {size}"
            )
        self.num_qubits = inferred
        self.data = vector

    # ------------------------------------------------------------- constructors
    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state |0...0>."""
        vector = np.zeros(2 ** num_qubits, dtype=complex)
        vector[0] = 1.0
        return cls(vector)

    @classmethod
    def from_amplitudes(cls, amplitudes: Sequence[complex]) -> "Statevector":
        """Build a state from (possibly unnormalized) amplitudes."""
        vector = np.asarray(amplitudes, dtype=complex).ravel()
        norm = np.linalg.norm(vector)
        if norm < 1e-15:
            raise ValueError("cannot normalize the zero vector")
        return cls(vector / norm)

    # -------------------------------------------------------------- operations
    def copy(self) -> "Statevector":
        """Deep copy."""
        return Statevector(self.data.copy())

    def tensor(self) -> np.ndarray:
        """Tensor view with axis ``n-1-q`` for qubit ``q``."""
        return self.data.reshape((2,) * self.num_qubits)

    def evolve_gate(self, gate: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Return the state after applying ``gate`` to ``qubits``."""
        tensor = apply_unitary_to_tensor(
            self.tensor(), gate, qubits, self.num_qubits
        )
        return Statevector(tensor.reshape(-1))

    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Measurement probabilities, optionally marginalized onto ``qubits``.

        The returned array is indexed little-endian over the requested qubits in
        the order given.
        """
        probs = np.abs(self.data) ** 2
        if qubits is None:
            return probs
        qubits = list(qubits)
        tensor = probs.reshape((2,) * self.num_qubits)
        keep_axes = [self.num_qubits - 1 - q for q in qubits]
        drop_axes = tuple(
            axis for axis in range(self.num_qubits) if axis not in keep_axes
        )
        marginal = tensor.sum(axis=drop_axes) if drop_axes else tensor
        # ``marginal`` axes are ordered by ascending original axis index, i.e. by
        # descending qubit index; reorder to match the requested qubit order.
        remaining_axes = [axis for axis in range(self.num_qubits) if axis in keep_axes]
        order = [remaining_axes.index(axis) for axis in keep_axes]
        marginal = np.transpose(marginal, order)
        # Requested order maps first qubit -> most significant axis of the result;
        # flatten so that the first listed qubit is the least significant bit.
        flat = marginal.reshape(-1)
        k = len(qubits)
        out = np.empty_like(flat)
        for idx in range(flat.shape[0]):
            bits = [(idx >> (k - 1 - pos)) & 1 for pos in range(k)]
            little = sum(bit << pos for pos, bit in enumerate(bits))
            out[little] = flat[idx]
        return out

    def probability_of_outcome(self, qubit: int, outcome: int) -> float:
        """Probability of measuring ``qubit`` in ``outcome`` (0 or 1)."""
        probs = self.probabilities([qubit])
        return float(probs[outcome])

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit``."""
        probs = self.probabilities([qubit])
        return float(probs[0] - probs[1])

    def inner(self, other: "Statevector") -> complex:
        """Inner product <self|other>."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("statevectors have different qubit counts")
        return complex(np.vdot(self.data, other.data))

    def fidelity(self, other: "Statevector") -> float:
        """Squared overlap |<self|other>|^2."""
        return float(abs(self.inner(other)) ** 2)

    def to_density_matrix(self) -> np.ndarray:
        """Return the pure-state density matrix |psi><psi|."""
        return np.outer(self.data, self.data.conj())

    def sample_counts(self, shots: int, rng: np.random.Generator,
                      qubits: Optional[Sequence[int]] = None) -> Dict[str, int]:
        """Sample measurement outcomes.

        Parameters
        ----------
        shots:
            Number of samples.
        rng:
            Random generator to draw from.
        qubits:
            Qubits to measure; all qubits by default.  Returned bitstring keys are
            little-endian (first listed qubit is the rightmost character).
        """
        probs = self.probabilities(qubits)
        probs = probs / probs.sum()
        num_bits = self.num_qubits if qubits is None else len(list(qubits))
        outcomes = rng.multinomial(shots, probs)
        counts: Dict[str, int] = {}
        for index, count in enumerate(outcomes):
            if count:
                counts[bitstring_from_index(index, num_bits)] = int(count)
        return counts

    def is_normalized(self, atol: float = 1e-9) -> bool:
        """True when the 2-norm of the amplitudes is 1 within ``atol``."""
        return bool(abs(np.linalg.norm(self.data) - 1.0) <= atol)

    def __repr__(self) -> str:
        return f"Statevector(num_qubits={self.num_qubits})"
