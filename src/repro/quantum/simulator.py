"""Shot-based circuit execution engines.

Two engines are provided, both consuming the same :class:`QuantumCircuit` IR:

* :class:`StatevectorSimulator` -- pure-state evolution.  Circuits containing
  mid-circuit ``reset`` or ``measure`` are run as stochastic trajectories (one per
  shot, or a configurable smaller number of trajectories with shots distributed
  over them), exactly like a hardware run would randomize those operations.
* :class:`DensityMatrixSimulator` -- exact mixed-state evolution; reset and noise
  channels are applied deterministically and measurement statistics are sampled
  from the final diagonal.  This is the reference engine for Quorum because the
  autoencoder's partial reset produces genuinely mixed states.

Both simulators accept a ``backend=`` argument (a name such as ``"numpy"`` or a
:class:`~repro.quantum.backend.SimulationBackend` instance) and route every gate
application through that backend's batched einsum kernels -- a single circuit is
simply a batch of size one.  The batched SWAP-test engines in
:mod:`repro.core.execution` share the very same kernels, so a new backend
implementation accelerates both the per-circuit and the batched paths.  See
:mod:`repro.quantum.backend` for the batching contract (leading batch axis,
``complex128`` dtype, little-endian indices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.quantum.backend import SimulationBackend, get_simulation_backend
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.compiler import CircuitCompiler, default_compiler
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import NoiseModel, ReadoutError
from repro.quantum.statevector import Statevector

__all__ = [
    "ExecutionResult",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "BatchedDensityMatrixSimulator",
    "IncompatibleMemberBatch",
]


class IncompatibleMemberBatch(ValueError):
    """A member group cannot walk as one stacked batch.

    Raised by :meth:`BatchedDensityMatrixSimulator.evolve_member_batch` when
    the group's circuits diverge structurally (e.g. a near-zero amplitude
    elides one sample's encoding rotation) or when a gate column is shared
    within some members but per-sample in others.  Callers fall back to
    per-member :meth:`~BatchedDensityMatrixSimulator.evolve_batch` walks,
    which handle arbitrary divergence and produce identical results.
    """


@dataclass
class ExecutionResult:
    """Outcome of running one circuit.

    Attributes
    ----------
    counts:
        Histogram of classical-register bitstrings (little-endian: clbit 0 is the
        rightmost character).  Only populated when the circuit measures something.
    shots:
        Number of shots requested.
    statevector:
        Final pure state, when the engine tracked one and the circuit had no
        stochastic operations.
    density_matrix:
        Final mixed state, when produced by the density-matrix engine.
    metadata:
        Engine-specific extras (e.g. number of trajectories).
    """

    counts: Dict[str, int]
    shots: int
    statevector: Optional[Statevector] = None
    density_matrix: Optional[DensityMatrix] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def probability(self, bitstring: str) -> float:
        """Empirical probability of a classical outcome."""
        if self.shots == 0:
            return 0.0
        return self.counts.get(bitstring, 0) / self.shots

    def marginal_probability(self, clbit: int, value: int) -> float:
        """Empirical probability that ``clbit`` reads ``value``."""
        if self.shots == 0:
            return 0.0
        total = 0
        for bitstring, count in self.counts.items():
            bit = int(bitstring[len(bitstring) - 1 - clbit])
            if bit == value:
                total += count
        return total / self.shots


def _apply_readout_error_to_bit(bit: int, readout: Optional[ReadoutError],
                                rng: np.random.Generator) -> int:
    if readout is None:
        return bit
    return readout.apply_to_bit(bit, rng)


class StatevectorSimulator:
    """Pure-state, trajectory-based circuit simulator."""

    def __init__(self, seed: Optional[int] = None,
                 max_trajectories: Optional[int] = None,
                 backend: Union[str, SimulationBackend, None] = None) -> None:
        self._rng = np.random.default_rng(seed)
        self.max_trajectories = max_trajectories
        self.backend = get_simulation_backend(backend)

    def _apply_gate(self, state: Statevector, gate: np.ndarray,
                    qubits: Sequence[int]) -> Statevector:
        """Apply one gate through the backend kernel (a batch of size one)."""
        data = self.backend.apply_gate_batch(state.data[None, :], gate, qubits)
        return Statevector(data[0])

    def run(self, circuit: QuantumCircuit, shots: int = 1024,
            seed: Optional[int] = None) -> ExecutionResult:
        """Execute ``circuit`` and return sampled counts.

        Noise models are not supported by this engine; use
        :class:`DensityMatrixSimulator` for noisy runs.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        stochastic = any(
            instr.name in {"reset", "measure"} for instr in circuit.instructions[:-1]
        ) or any(instr.name == "reset" for instr in circuit.instructions)
        has_measure = any(instr.name == "measure" for instr in circuit.instructions)

        if not stochastic:
            state = self._evolve_deterministic(circuit)
            counts: Dict[str, int] = {}
            if has_measure and shots > 0:
                counts = self._sample_terminal_measurements(circuit, state, shots, rng)
            return ExecutionResult(counts=counts, shots=shots, statevector=state,
                                   metadata={"method": "statevector"})

        trajectories = shots
        if self.max_trajectories is not None:
            trajectories = min(trajectories, self.max_trajectories)
        trajectories = max(trajectories, 1)
        shots_per_trajectory = self._split_shots(shots, trajectories)
        counts = {}
        last_state: Optional[Statevector] = None
        for trajectory_shots in shots_per_trajectory:
            state, classical = self._evolve_trajectory(circuit, rng)
            last_state = state
            if not has_measure or trajectory_shots == 0:
                continue
            trajectory_counts = self._sample_terminal_measurements(
                circuit, state, trajectory_shots, rng, classical
            )
            for bitstring, count in trajectory_counts.items():
                counts[bitstring] = counts.get(bitstring, 0) + count
        return ExecutionResult(
            counts=counts,
            shots=shots,
            statevector=last_state,
            metadata={"method": "statevector_trajectories",
                      "trajectories": len(shots_per_trajectory)},
        )

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _split_shots(shots: int, trajectories: int) -> List[int]:
        base = shots // trajectories
        remainder = shots % trajectories
        split = [base + (1 if index < remainder else 0) for index in range(trajectories)]
        return [s for s in split if s > 0] or [0]

    def _evolve_deterministic(self, circuit: QuantumCircuit) -> Statevector:
        state = Statevector.zero_state(circuit.num_qubits)
        for instruction in circuit.instructions:
            if instruction.name in {"barrier", "measure"}:
                continue
            if instruction.name == "initialize":
                state = self._apply_initialize(state, instruction, circuit.num_qubits)
                continue
            state = self._apply_gate(state, instruction.matrix_or_standard(),
                                     instruction.qubits)
        return state

    def _evolve_trajectory(self, circuit: QuantumCircuit,
                           rng: np.random.Generator) -> Tuple[Statevector, Dict[int, int]]:
        state = Statevector.zero_state(circuit.num_qubits)
        classical: Dict[int, int] = {}
        terminal_measures = self._terminal_measurement_indices(circuit)
        for index, instruction in enumerate(circuit.instructions):
            if instruction.name == "barrier":
                continue
            if instruction.name == "initialize":
                state = self._apply_initialize(state, instruction, circuit.num_qubits)
                continue
            if instruction.name == "reset":
                state, _ = self._project_qubit(state, instruction.qubits[0], rng,
                                               collapse_to_zero=True)
                continue
            if instruction.name == "measure":
                if index in terminal_measures:
                    # Terminal measurements are sampled afterwards (all shots of the
                    # trajectory draw from the same final distribution).
                    continue
                state, outcome = self._project_qubit(state, instruction.qubits[0], rng)
                classical[instruction.clbits[0]] = outcome
                continue
            state = self._apply_gate(state, instruction.matrix_or_standard(),
                                     instruction.qubits)
        return state, classical

    @staticmethod
    def _terminal_measurement_indices(circuit: QuantumCircuit) -> set:
        """Indices of measurements not followed by any gate/reset on their qubit."""
        terminal: set = set()
        for index, instruction in enumerate(circuit.instructions):
            if instruction.name != "measure":
                continue
            qubit = instruction.qubits[0]
            followed = False
            for later in circuit.instructions[index + 1:]:
                if later.name == "barrier":
                    continue
                if qubit in later.qubits and later.name != "measure":
                    followed = True
                    break
            if not followed:
                terminal.add(index)
        return terminal

    @staticmethod
    def _apply_initialize(state: Statevector, instruction: Instruction,
                          num_qubits: int) -> Statevector:
        target_state = instruction.state
        if target_state is None:
            raise ValueError("initialize instruction is missing its statevector")
        if len(instruction.qubits) == num_qubits and tuple(instruction.qubits) == tuple(
                range(num_qubits)):
            return Statevector(target_state.copy())
        # Tensor the prepared register into the existing state.  The target qubits
        # must currently be in |0...0> (which is how amplitude encoding uses it).
        mask = 0
        for qubit in instruction.qubits:
            mask |= 1 << qubit
        data = state.data
        occupied = sum(abs(data[index]) ** 2
                       for index in range(data.shape[0]) if index & mask)
        if occupied > 1e-9:
            raise ValueError(
                "initialize requires its target qubits to be in |0>; "
                "reset them first or initialize before other operations"
            )
        spreads = []
        for local_index in range(target_state.shape[0]):
            spread = 0
            for position, qubit in enumerate(instruction.qubits):
                if (local_index >> position) & 1:
                    spread |= 1 << qubit
            spreads.append(spread)
        full = np.zeros_like(data)
        for index in range(data.shape[0]):
            if index & mask or data[index] == 0:
                continue
            for local_index, amplitude in enumerate(target_state):
                if amplitude == 0:
                    continue
                full[index | spreads[local_index]] += data[index] * amplitude
        return Statevector(full)

    @staticmethod
    def _project_qubit(state: Statevector, qubit: int, rng: np.random.Generator,
                       collapse_to_zero: bool = False) -> Tuple[Statevector, int]:
        """Measure ``qubit``; optionally flip the post-measurement state to |0>."""
        probabilities = state.probabilities([qubit])
        outcome = int(rng.random() < probabilities[1])
        tensor = state.tensor().copy()
        axis = state.num_qubits - 1 - qubit
        index = [slice(None)] * state.num_qubits
        index[axis] = 1 - outcome
        tensor[tuple(index)] = 0.0
        collapsed = tensor.reshape(-1)
        norm = np.linalg.norm(collapsed)
        if norm < 1e-15:
            raise RuntimeError("measurement collapsed onto a zero-norm state")
        collapsed = collapsed / norm
        new_state = Statevector(collapsed)
        if collapse_to_zero and outcome == 1:
            from repro.quantum.gates import X  # local import to avoid cycles at load

            new_state = new_state.evolve_gate(X, [qubit])
        return new_state, outcome

    def _sample_terminal_measurements(self, circuit: QuantumCircuit,
                                      state: Statevector, shots: int,
                                      rng: np.random.Generator,
                                      classical: Optional[Dict[int, int]] = None
                                      ) -> Dict[str, int]:
        classical = dict(classical or {})
        measure_map: Dict[int, int] = {}
        for index in self._terminal_measurement_indices(circuit):
            instruction = circuit.instructions[index]
            measure_map[instruction.clbits[0]] = instruction.qubits[0]
        if not measure_map and not classical:
            return {}
        qubits = sorted(set(measure_map.values()))
        counts: Dict[str, int] = {}
        if qubits:
            qubit_counts = state.sample_counts(shots, rng, qubits)
        else:
            qubit_counts = {"": shots}
        for qubit_bitstring, count in qubit_counts.items():
            bits = dict(classical)
            for clbit, qubit in measure_map.items():
                position = qubits.index(qubit)
                bits[clbit] = int(qubit_bitstring[len(qubit_bitstring) - 1 - position])
            register = ["0"] * circuit.num_clbits
            for clbit, value in bits.items():
                register[circuit.num_clbits - 1 - clbit] = str(value)
            key = "".join(register)
            counts[key] = counts.get(key, 0) + count
        return counts


class DensityMatrixSimulator:
    """Exact mixed-state simulator with optional noise model."""

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 seed: Optional[int] = None,
                 backend: Union[str, SimulationBackend, None] = None) -> None:
        self.noise_model = noise_model
        self._rng = np.random.default_rng(seed)
        self.backend = get_simulation_backend(backend)

    def _apply_gate(self, state: DensityMatrix, gate: np.ndarray,
                    qubits: Sequence[int]) -> DensityMatrix:
        """Conjugate by one gate through the backend kernel (batch of size one)."""
        data = self.backend.apply_gate_density_batch(state.data[None, :, :],
                                                     gate, qubits)
        return DensityMatrix(data[0])

    def run(self, circuit: QuantumCircuit, shots: int = 1024,
            seed: Optional[int] = None) -> ExecutionResult:
        """Execute ``circuit`` exactly and sample ``shots`` classical outcomes."""
        if shots < 0:
            raise ValueError("shots must be non-negative")
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        state = self.evolve(circuit)
        measure_map: Dict[int, int] = {}
        for instruction in circuit.instructions:
            if instruction.name == "measure":
                measure_map[instruction.clbits[0]] = instruction.qubits[0]
        counts: Dict[str, int] = {}
        if measure_map and shots > 0:
            counts = self._sample(circuit, state, measure_map, shots, rng)
        return ExecutionResult(counts=counts, shots=shots, density_matrix=state,
                               metadata={"method": "density_matrix",
                                         "noisy": self.noise_model is not None
                                         and not self.noise_model.is_trivial})

    def evolve(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Evolve the circuit and return the final density matrix (no sampling)."""
        state = DensityMatrix.zero_state(circuit.num_qubits)
        for instruction in circuit.instructions:
            state = self._apply_instruction(state, instruction, circuit.num_qubits)
        return state

    # ------------------------------------------------------------------ helpers
    def _apply_instruction(self, state: DensityMatrix, instruction: Instruction,
                           num_qubits: int) -> DensityMatrix:
        if instruction.name in {"barrier", "measure"}:
            return state
        if instruction.name == "initialize":
            return self._apply_initialize_density(state, instruction, num_qubits)
        if instruction.name == "reset":
            return state.reset_qubit(instruction.qubits[0])
        state = self._apply_gate(state, instruction.matrix_or_standard(),
                                 instruction.qubits)
        if self.noise_model is not None:
            error = self.noise_model.error_for_instruction(instruction)
            if error is not None:
                state = state.apply_superoperator(
                    error.superoperator, instruction.qubits[: error.num_qubits]
                )
        return state

    @staticmethod
    def _apply_initialize_density(state: DensityMatrix, instruction: Instruction,
                                  num_qubits: int) -> DensityMatrix:
        target_state = instruction.state
        if target_state is None:
            raise ValueError("initialize instruction is missing its statevector")
        mask = 0
        for qubit in instruction.qubits:
            mask |= 1 << qubit
        rho = state.data
        dim = rho.shape[0]
        occupied = sum(abs(rho[index, index]) for index in range(dim) if index & mask)
        if occupied > 1e-9:
            raise ValueError(
                "initialize requires its target qubits to be in |0>; "
                "reset them first or initialize before other operations"
            )
        spreads = []
        for local_index in range(target_state.shape[0]):
            spread = 0
            for position, qubit in enumerate(instruction.qubits):
                if (local_index >> position) & 1:
                    spread |= 1 << qubit
            spreads.append(spread)
        new_rho = np.zeros_like(rho)
        nonzero_rows = [index for index in range(dim)
                        if not index & mask]
        for row in nonzero_rows:
            for col in nonzero_rows:
                value = rho[row, col]
                if value == 0:
                    continue
                for local_row, amp_row in enumerate(target_state):
                    if amp_row == 0:
                        continue
                    for local_col, amp_col in enumerate(target_state):
                        if amp_col == 0:
                            continue
                        new_rho[row | spreads[local_row], col | spreads[local_col]] += (
                            value * amp_row * np.conj(amp_col)
                        )
        return DensityMatrix(new_rho)

    def _sample(self, circuit: QuantumCircuit, state: DensityMatrix,
                measure_map: Dict[int, int], shots: int,
                rng: np.random.Generator) -> Dict[str, int]:
        qubits = sorted(set(measure_map.values()))
        probabilities = state.probabilities(qubits)
        readout = self.noise_model.readout_error if self.noise_model else None
        outcomes = rng.multinomial(shots, probabilities / probabilities.sum())
        counts: Dict[str, int] = {}
        for index, count in enumerate(outcomes):
            if count == 0:
                continue
            base_bits = [(index >> position) & 1 for position in range(len(qubits))]
            if readout is None:
                register = ["0"] * circuit.num_clbits
                for clbit, qubit in measure_map.items():
                    position = qubits.index(qubit)
                    register[circuit.num_clbits - 1 - clbit] = str(base_bits[position])
                key = "".join(register)
                counts[key] = counts.get(key, 0) + int(count)
                continue
            for _ in range(count):
                register = ["0"] * circuit.num_clbits
                for clbit, qubit in measure_map.items():
                    position = qubits.index(qubit)
                    bit = base_bits[position]
                    bit = _apply_readout_error_to_bit(bit, readout, rng)
                    register[circuit.num_clbits - 1 - clbit] = str(bit)
                key = "".join(register)
                counts[key] = counts.get(key, 0) + 1
        return counts


class BatchedDensityMatrixSimulator:
    """Exact mixed-state evolution of a whole batch of circuits at once.

    Quorum's noisy runs execute the *same* circuit for every sample -- only the
    amplitude-encoding differs (the ``initialize`` payload, or the angles of the
    gate-level state preparation).  This walker exploits that: circuits are
    grouped by structural signature (instruction names and qubits), and each
    group is evolved through one batched instruction walk on the simulation
    backend, applying noise channels to the whole batch per gate.  Gates whose
    matrices differ across the batch (per-sample state-preparation rotations)
    go through the per-sample-gate kernel; shared gates (ansatz, SWAP test) use
    the single-gate kernel.

    This removes the last per-sample Python loop from the noisy density-matrix
    path while remaining exactly equivalent to running
    :class:`DensityMatrixSimulator` once per circuit.

    Checkpoint/replay
    -----------------
    A compression-level sweep runs the *same* prefix (encoding + encoder) before
    a per-level suffix (reset block + decoder + SWAP test).  Rather than
    re-walking the shared prefix once per level, evolve the prefix circuits once
    with :meth:`evolve_batch` and keep the returned ``(batch, d, d)`` density
    batch as a checkpoint; :meth:`replay_suffix_batch` then resumes from a
    snapshot of that checkpoint once per level, walking only the (shared,
    sample-independent) suffix circuit.  ``evolve_batch`` also *accepts* a
    density batch via ``initial_rhos``, so arbitrary per-sample continuations
    can resume from a checkpoint as well.  Noise channels stay fused
    gate-by-gate into single superoperator passes on both sides of the split.

    Compiled execution
    ------------------
    By default (``compile_programs=True``) the walker does not interpret the
    shared portions of a circuit gate by gate: contiguous runs of
    sample-independent instructions (shared gates, their noise channels,
    resets) are lowered once through a :class:`~repro.quantum.compiler
    .CircuitCompiler` into a handful of fused dense operators and applied via
    :meth:`SimulationBackend.apply_compiled_superoperator_batch`.  Only the
    genuinely per-sample columns (``initialize`` payloads, state-preparation
    rotations with per-sample angles) still walk individually.  Compiled runs
    live in the compiler's LRU cache keyed by (circuit signature, noise
    fingerprint, backend dtype), so repeated sweeps never re-lower.
    ``compile_programs=False`` selects the original gate-by-gate interpreter,
    retained as the reference path for the parity test suite.
    """

    #: Upper bound on density-matrix elements (``batch * 4**num_qubits``) walked
    #: at once.  Density batches are quadratic in the register dimension, so an
    #: unbounded batch falls out of cache and the contractions become
    #: memory-bound; ~8 MB of complex128 per chunk is flat-optimal on the
    #: 7-qubit Quorum circuits while still amortizing the per-gate overhead.
    MAX_FLAT_ELEMENTS = 1 << 19

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 backend: Union[str, SimulationBackend, None] = None,
                 compiler: Optional[CircuitCompiler] = None,
                 compile_programs: bool = True) -> None:
        self.noise_model = noise_model
        self.backend = get_simulation_backend(backend)
        self.compiler = compiler if compiler is not None else default_compiler()
        self.compile_programs = bool(compile_programs)

    def evolve_batch(self, circuits: Sequence[QuantumCircuit],
                     initial_rhos: Optional[np.ndarray] = None) -> np.ndarray:
        """Final density matrices of every circuit; shape ``(batch, d, d)``.

        Circuits may differ structurally (e.g. a near-zero state-preparation
        angle elides one rotation); each structural group is walked separately
        and the results are scattered back into input order.

        ``initial_rhos`` resumes the walk from one density matrix per circuit
        (a checkpoint produced by an earlier ``evolve_batch`` call) instead of
        |0...0><0...0|.  The checkpoint is never mutated: every group walks a
        backend-owned snapshot of its rows.
        """
        if not circuits:
            raise ValueError("evolve_batch needs at least one circuit")
        num_qubits = circuits[0].num_qubits
        if any(circuit.num_qubits != num_qubits for circuit in circuits):
            raise ValueError("all circuits in a batch must have the same width")
        dim = 2 ** num_qubits
        if initial_rhos is not None:
            initial_rhos = np.asarray(initial_rhos)
            if initial_rhos.shape != (len(circuits), dim, dim):
                raise ValueError(
                    "initial_rhos must hold one (d, d) density matrix per "
                    f"circuit; expected {(len(circuits), dim, dim)}, got "
                    f"{initial_rhos.shape}"
                )
        groups: Dict[Tuple, List[int]] = {}
        for index, circuit in enumerate(circuits):
            signature = tuple(
                (instruction.name, instruction.qubits)
                for instruction in circuit.instructions
            )
            groups.setdefault(signature, []).append(index)
        results = np.empty((len(circuits), dim, dim), dtype=self.backend.dtype)
        chunk = max(1, self.MAX_FLAT_ELEMENTS // (dim * dim))
        for indices in groups.values():
            for start in range(0, len(indices), chunk):
                selected = indices[start:start + chunk]
                initial = (initial_rhos[selected]
                           if initial_rhos is not None else None)
                results[selected] = self._evolve_group(
                    [circuits[i] for i in selected], initial
                )
        return results

    def evolve_member_batch(self, member_circuits: Sequence[Sequence[QuantumCircuit]]
                            ) -> np.ndarray:
        """Walk a whole signature group of per-member sample batches at once.

        ``member_circuits[m]`` holds ensemble member ``m``'s per-sample
        circuits (all members carry the same sample count and the same
        instruction structure -- same gates on the same qubits, parameters
        free to differ).  The walk mirrors :meth:`evolve_batch`'s compiled
        walk with the member axis batched through:

        * gate columns *shared within every member* (ansatz gates, resets,
          their noise channels) accumulate into runs that compile to ONE
          member-stacked channel program per run
          (:meth:`~repro.quantum.compiler.CircuitCompiler
          .member_stacked_channel_program`) and apply via
          :meth:`~repro.quantum.backend.SimulationBackend
          .apply_compiled_superoperator_member_batch`;
        * genuinely per-sample columns (``initialize`` payloads, per-sample
          state-preparation rotations) flatten across members into one
          ``(members * samples)`` batch per column.

        Every member's slice runs the exact kernel sequence of a per-member
        :meth:`evolve_batch` call, so results are bitwise identical to the
        serial walk.  Returns ``(members, samples, d, d)``.

        Raises :class:`IncompatibleMemberBatch` when the group cannot walk as
        one stack (structural divergence between samples, a column shared in
        some members but per-sample in others, interpreted mode, or a sample
        batch larger than one walk chunk); callers fall back to per-member
        :meth:`evolve_batch`.
        """
        members = len(member_circuits)
        if members < 1 or any(len(batch) < 1 for batch in member_circuits):
            raise ValueError("evolve_member_batch needs at least one circuit "
                             "per member")
        samples = len(member_circuits[0])
        if any(len(batch) != samples for batch in member_circuits):
            raise ValueError("every member must carry the same sample count")
        if not self.compile_programs:
            raise IncompatibleMemberBatch(
                "the interpreted reference walk has no member-stacked variant"
            )
        num_qubits = member_circuits[0][0].num_qubits
        dim = 2 ** num_qubits
        if samples > max(1, self.MAX_FLAT_ELEMENTS // (dim * dim)):
            # The serial walk would chunk each member's batch; per-chunk
            # shared-gate classification could then diverge from whole-batch
            # classification, so keep those walks on the per-member path.
            raise IncompatibleMemberBatch(
                "sample batch exceeds one walk chunk; run members "
                "individually"
            )
        signature = tuple(
            (instruction.name, instruction.qubits)
            for instruction in member_circuits[0][0].instructions
        )
        for batch in member_circuits:
            for circuit in batch:
                if circuit.num_qubits != num_qubits or tuple(
                    (instruction.name, instruction.qubits)
                    for instruction in circuit.instructions
                ) != signature:
                    raise IncompatibleMemberBatch(
                        "member group diverges structurally; run members "
                        "individually"
                    )
        return self._evolve_member_group_compiled(member_circuits, num_qubits,
                                                  members, samples, dim)

    def _evolve_member_group_compiled(self, member_circuits, num_qubits: int,
                                      members: int, samples: int,
                                      dim: int) -> np.ndarray:
        """Compiled member-stacked walk over a structure-uniform group.

        The walk bookkeeping -- instruction iteration, shared/per-sample
        column classification, flush scheduling -- runs ONCE for the whole
        group, but the heavy density kernels dispatch per member slice: each
        member's ``(samples, d, d)`` batch stays cache-resident, and every
        slice runs the exact kernel sequence (and hits the same
        compiled-program cache entries) as a per-member :meth:`evolve_batch`
        walk, which is what makes the stacked result bitwise identical to the
        serial one.  An earlier variant flattened the group into one
        ``(members * samples, d, d)`` batch; at ensemble scale those arrays
        fall out of cache and the walk went memory-bound, slower than the
        serial path it replaced.
        """
        backend = self.backend
        rho_batches = [
            backend.density_from_states(
                backend.zero_states(samples, num_qubits)
            )
            for _ in range(members)
        ]
        pending: List[int] = []

        def flush() -> None:
            if not pending:
                return
            for member, batch in enumerate(member_circuits):
                template = batch[0]
                shared = QuantumCircuit(num_qubits, 1, name="compiled_run")
                shared.instructions = [template.instructions[p]
                                       for p in pending]
                program = self.compiler.channel_program(
                    shared, self.noise_model, backend
                )
                rho_batches[member] = (
                    backend.apply_compiled_superoperator_batch(
                        rho_batches[member], program
                    )
                )
            pending.clear()

        for position, instruction in enumerate(
                member_circuits[0][0].instructions):
            name = instruction.name
            if name in {"barrier", "measure"}:
                continue
            if name == "reset":
                pending.append(position)
                continue
            if name == "initialize":
                flush()
                for member, batch in enumerate(member_circuits):
                    states = [circuit.instructions[position].state
                              for circuit in batch]
                    if any(state is None for state in states):
                        raise ValueError("initialize instruction is missing "
                                         "its statevector")
                    rho_batches[member] = self._apply_initialize_batch(
                        rho_batches[member], np.stack(states),
                        instruction.qubits, num_qubits
                    )
                continue
            member_matrices = [
                [circuit.instructions[position].matrix_or_standard()
                 for circuit in batch]
                for batch in member_circuits
            ]
            shared_flags = [
                all(matrix is matrices[0]
                    or np.array_equal(matrix, matrices[0])
                    for matrix in matrices[1:])
                for matrices in member_matrices
            ]
            if all(shared_flags):
                pending.append(position)
                continue
            if any(shared_flags):
                # Shared for some members, per-sample for others: the serial
                # walk would compile the column for the former and stack it
                # for the latter, and replicating that split is not worth the
                # complexity for a case amplitude encoding never produces.
                raise IncompatibleMemberBatch(
                    "gate column is shared within some members but "
                    "per-sample in others"
                )
            flush()
            for member, matrices in enumerate(member_matrices):
                rho_batches[member] = self._apply_per_sample_column(
                    rho_batches[member], instruction, matrices
                )
        flush()
        return np.stack(rho_batches)

    def replay_suffix_batch(self, checkpoint_rhos: np.ndarray,
                            circuit: QuantumCircuit) -> np.ndarray:
        """Resume a whole density batch through one shared suffix circuit.

        ``checkpoint_rhos`` is the ``(batch, d, d)`` result of an earlier
        :meth:`evolve_batch` over the level-independent prefix circuits;
        ``circuit`` is the per-level suffix (reset block + decoder + SWAP test)
        shared by every sample.  Each call replays from a snapshot, so one
        checkpoint serves the whole compression sweep.  Noise channels are
        fused with their gates exactly as in :meth:`evolve_batch`.

        With compilation on (the default) the suffix is lowered once into a
        compiled channel program -- every gate fused with its noise channel,
        contiguous runs fused into dense support-block superoperators (ONE
        ``4^n x 4^n`` superoperator when the register fits the compiler's
        support cap) -- and the whole replay is a few batched matmuls against
        the snapshot instead of a Python gate walk.
        """
        checkpoint_rhos = np.asarray(checkpoint_rhos)
        if checkpoint_rhos.ndim != 3:
            raise ValueError("a checkpoint must be a (batch, d, d) density batch")
        if any(instruction.name == "initialize"
               for instruction in circuit.instructions):
            raise ValueError(
                "a suffix circuit cannot re-initialize qubits; encoding belongs "
                "to the prefix"
            )
        if self.compile_programs:
            dim = checkpoint_rhos.shape[1]
            if dim != 2 ** circuit.num_qubits:
                raise ValueError(
                    "checkpoint dimension does not match the suffix circuit"
                )
            program = self.compiler.channel_program(circuit, self.noise_model,
                                                    self.backend)
            snapshot = self.backend.copy_density_batch(checkpoint_rhos)
            chunk = max(1, self.MAX_FLAT_ELEMENTS // (dim * dim))
            if snapshot.shape[0] <= chunk:
                return self.backend.apply_compiled_superoperator_batch(snapshot,
                                                                       program)
            results = np.empty_like(snapshot)
            for start in range(0, snapshot.shape[0], chunk):
                results[start:start + chunk] = (
                    self.backend.apply_compiled_superoperator_batch(
                        snapshot[start:start + chunk], program)
                )
            return results
        return self.evolve_batch([circuit] * checkpoint_rhos.shape[0],
                                 initial_rhos=checkpoint_rhos)

    # ------------------------------------------------------------------ helpers
    def _evolve_group(self, circuits: List[QuantumCircuit],
                      initial: Optional[np.ndarray] = None) -> np.ndarray:
        """Walk one group of structurally identical circuits as a batch."""
        if self.compile_programs:
            return self._evolve_group_compiled(circuits, initial)
        return self._evolve_group_interpreted(circuits, initial)

    def _evolve_group_compiled(self, circuits: List[QuantumCircuit],
                               initial: Optional[np.ndarray] = None
                               ) -> np.ndarray:
        """Compiled walk: shared instruction runs execute as fused operators.

        Contiguous runs of sample-independent instructions (gates whose
        matrices agree across the batch, and resets) are collected into a
        sub-circuit, lowered once through the compiler's LRU-cached
        ``channel_program`` (gates fused with their noise channels, runs fused
        into dense support-block operators), and applied with
        ``apply_compiled_superoperator_batch``.  Per-sample columns
        (``initialize`` payloads, state-preparation gates with per-sample
        angles) are executed exactly like the interpreted reference walk.
        """
        backend = self.backend
        num_qubits = circuits[0].num_qubits
        if initial is not None:
            rhos = backend.copy_density_batch(initial)
        else:
            rhos = backend.density_from_states(
                backend.zero_states(len(circuits), num_qubits)
            )
        pending: List[Instruction] = []

        def flush(rhos: np.ndarray) -> np.ndarray:
            if not pending:
                return rhos
            shared = QuantumCircuit(num_qubits, 1, name="compiled_run")
            shared.instructions = pending.copy()
            pending.clear()
            program = self.compiler.channel_program(shared, self.noise_model,
                                                    backend)
            return backend.apply_compiled_superoperator_batch(rhos, program)

        for position, instruction in enumerate(circuits[0].instructions):
            name = instruction.name
            if name in {"barrier", "measure"}:
                continue
            if name == "reset":
                pending.append(instruction)
                continue
            if name == "initialize":
                rhos = flush(rhos)
                states = [circuit.instructions[position].state
                          for circuit in circuits]
                if any(state is None for state in states):
                    raise ValueError("initialize instruction is missing its "
                                     "statevector")
                rhos = self._apply_initialize_batch(
                    rhos, np.stack(states), instruction.qubits, num_qubits
                )
                continue
            matrices = [circuit.instructions[position].matrix_or_standard()
                        for circuit in circuits]
            first = matrices[0]
            shared = all(matrix is first or np.array_equal(matrix, first)
                         for matrix in matrices[1:])
            if shared:
                pending.append(instruction)
                continue
            rhos = flush(rhos)
            rhos = self._apply_per_sample_column(rhos, instruction, matrices)
        return flush(rhos)

    def _apply_per_sample_column(self, rhos: np.ndarray,
                                 instruction: Instruction,
                                 matrices: List[np.ndarray]) -> np.ndarray:
        """One sample-dependent gate column, fused with its noise channel.

        Shared by the compiled and interpreted walks (per-sample columns are
        never ahead-of-time compiled), so the two walks only differ where
        compilation re-associates *shared* operator products.  The one fused
        superoperator pass per gate halves (noiseless) or thirds (noisy) the
        full-batch tensor contractions versus applying gate and channel
        separately.
        """
        backend = self.backend
        error = (self.noise_model.error_for_instruction(instruction)
                 if self.noise_model is not None else None)
        if error is not None and error.num_qubits != len(instruction.qubits):
            # Channel acts on a sub-block of the gate's qubits; too rare to
            # fuse, apply the two steps separately.
            rhos = backend.apply_gates_density_batch(rhos, np.stack(matrices),
                                                     instruction.qubits)
            return backend.apply_superoperator_density_batch(
                rhos, error.superoperator,
                instruction.qubits[: error.num_qubits],
            )
        gates = np.stack(matrices)
        local_dim = gates.shape[-1]
        superops = np.einsum("bij,bkl->bikjl", gates, gates.conj()).reshape(
            gates.shape[0], local_dim ** 2, local_dim ** 2
        )
        if error is not None:
            superops = np.matmul(error.superoperator, superops)
        return backend.apply_superoperators_density_batch(
            rhos, superops, instruction.qubits
        )

    def _evolve_group_interpreted(self, circuits: List[QuantumCircuit],
                                  initial: Optional[np.ndarray] = None
                                  ) -> np.ndarray:
        """Gate-by-gate reference walk (``compile_programs=False``)."""
        backend = self.backend
        num_qubits = circuits[0].num_qubits
        if initial is not None:
            rhos = backend.copy_density_batch(initial)
        else:
            rhos = backend.density_from_states(
                backend.zero_states(len(circuits), num_qubits)
            )
        for position, instruction in enumerate(circuits[0].instructions):
            name = instruction.name
            if name in {"barrier", "measure"}:
                continue
            if name == "initialize":
                states = [circuit.instructions[position].state
                          for circuit in circuits]
                if any(state is None for state in states):
                    raise ValueError("initialize instruction is missing its "
                                     "statevector")
                rhos = self._apply_initialize_batch(
                    rhos, np.stack(states), instruction.qubits, num_qubits
                )
                continue
            if name == "reset":
                rhos = backend.reset_qubit_density_batch(rhos,
                                                         instruction.qubits[0])
                continue
            matrices = [circuit.instructions[position].matrix_or_standard()
                        for circuit in circuits]
            first = matrices[0]
            shared = all(matrix is first or np.array_equal(matrix, first)
                         for matrix in matrices[1:])
            if not shared:
                rhos = self._apply_per_sample_column(rhos, instruction,
                                                     matrices)
                continue
            error = (self.noise_model.error_for_instruction(instruction)
                     if self.noise_model is not None else None)
            if error is not None and error.num_qubits != len(instruction.qubits):
                # Channel acts on a sub-block of the gate's qubits; too rare to
                # fuse, apply the two steps separately.
                rhos = backend.apply_gate_density_batch(rhos, first,
                                                        instruction.qubits)
                rhos = backend.apply_superoperator_density_batch(
                    rhos, error.superoperator,
                    instruction.qubits[: error.num_qubits],
                )
                continue
            if error is None:
                rhos = backend.apply_gate_density_batch(rhos, first,
                                                        instruction.qubits)
                continue
            # One fused superoperator pass per gate: the unitary conjugation
            # ``vec(U rho U^dagger) = (U (x) conj(U)) vec(rho)`` composed with
            # the gate's noise channel thirds the number of full-batch tensor
            # contractions, which dominate the walk on ``2n+1``-qubit matrices.
            superop = error.superoperator @ np.kron(first, first.conj())
            rhos = backend.apply_superoperator_density_batch(
                rhos, superop, instruction.qubits
            )
        return rhos

    def _apply_initialize_batch(self, rhos: np.ndarray, states: np.ndarray,
                                qubits: Sequence[int],
                                num_qubits: int) -> np.ndarray:
        """Batched twin of ``DensityMatrixSimulator._apply_initialize_density``.

        ``states`` holds one ``2^k`` payload per batch entry.  The target qubits
        must be in |0> in every entry (as amplitude encoding guarantees); the
        payloads are tensored into the untouched remainder of each matrix.
        """
        backend = self.backend
        states = np.asarray(states, dtype=backend.dtype)
        batch, dim = rhos.shape[0], rhos.shape[1]
        if states.shape != (batch, 2 ** len(qubits)):
            raise ValueError("one initialize payload per batch entry is required")
        mask = 0
        for qubit in qubits:
            mask |= 1 << qubit
        indices = np.arange(dim)
        free = indices[(indices & mask) == 0]
        diagonal = np.real(np.einsum("bii->bi", rhos))
        occupied = diagonal[:, indices[(indices & mask) != 0]].sum(axis=1)
        if np.any(occupied > 1e-9):
            raise ValueError(
                "initialize requires its target qubits to be in |0>; "
                "reset them first or initialize before other operations"
            )
        spreads = np.zeros(states.shape[1], dtype=np.int64)
        for position, qubit in enumerate(qubits):
            local = np.arange(states.shape[1])
            spreads |= ((local >> position) & 1) << qubit
        # new_rho[b, r|spread_i, c|spread_j] = rho[b, r, c] * t[b,i] * conj(t[b,j])
        sub = rhos[:, free[:, None], free[None, :]]
        block = np.einsum("bfg,bi,bj->bfigj", sub, states, states.conj())
        targets = (free[:, None] | spreads[None, :]).reshape(-1)
        result = np.zeros_like(rhos)
        result[:, targets[:, None], targets[None, :]] = block.reshape(
            batch, targets.shape[0], targets.shape[0]
        )
        return result
