"""Pauli-string operators and expectation values.

Provides the observable side of the substrate: tensor products of {I, X, Y, Z}
addressed by label strings (e.g. ``"ZII"``), and real linear combinations of them
(:class:`PauliSum`).  The QNN baseline's readout (<Z> on qubit 0) and several
tests are expressed through these helpers.

Label convention: the **rightmost** character of a label acts on qubit 0, matching
the little-endian bitstring convention used everywhere else in the package (and
Qiskit's `Pauli` labels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector

__all__ = ["PauliString", "PauliSum", "single_qubit_pauli"]

_SINGLE = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_StateLike = Union[Statevector, DensityMatrix, np.ndarray]


@dataclass(frozen=True)
class PauliString:
    """A tensor product of single-qubit Paulis, e.g. ``PauliString("ZXI")``."""

    label: str

    def __post_init__(self) -> None:
        label = self.label.upper()
        if not label or any(char not in _SINGLE for char in label):
            raise ValueError(
                f"invalid Pauli label {self.label!r}; use characters from I, X, Y, Z"
            )
        object.__setattr__(self, "label", label)

    # ------------------------------------------------------------------ basics
    @property
    def num_qubits(self) -> int:
        """Number of qubits the string acts on."""
        return len(self.label)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for char in self.label if char != "I")

    def factor(self, qubit: int) -> str:
        """The Pauli acting on ``qubit`` (rightmost label character = qubit 0)."""
        if not 0 <= qubit < self.num_qubits:
            raise IndexError(f"qubit {qubit} out of range")
        return self.label[self.num_qubits - 1 - qubit]

    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (little-endian qubit ordering)."""
        matrix = np.array([[1.0]], dtype=complex)
        # The leftmost label character is the most significant qubit, so building
        # the Kronecker product left to right yields the little-endian matrix.
        for char in self.label:
            matrix = np.kron(matrix, _SINGLE[char])
        return matrix

    # -------------------------------------------------------------- algebra
    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two strings commute (even number of anticommuting sites)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("Pauli strings act on different qubit counts")
        anticommuting = 0
        for mine, theirs in zip(self.label, other.label):
            if mine != "I" and theirs != "I" and mine != theirs:
                anticommuting += 1
        return anticommuting % 2 == 0

    def compose(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Product ``self @ other`` as (phase, PauliString)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("Pauli strings act on different qubit counts")
        phase: complex = 1.0
        characters: List[str] = []
        rules: Dict[Tuple[str, str], Tuple[complex, str]] = {
            ("X", "Y"): (1j, "Z"), ("Y", "X"): (-1j, "Z"),
            ("Y", "Z"): (1j, "X"), ("Z", "Y"): (-1j, "X"),
            ("Z", "X"): (1j, "Y"), ("X", "Z"): (-1j, "Y"),
        }
        for mine, theirs in zip(self.label, other.label):
            if mine == "I":
                characters.append(theirs)
            elif theirs == "I":
                characters.append(mine)
            elif mine == theirs:
                characters.append("I")
            else:
                factor_phase, result = rules[(mine, theirs)]
                phase *= factor_phase
                characters.append(result)
        return phase, PauliString("".join(characters))

    # --------------------------------------------------------------- expectation
    def expectation(self, state: _StateLike) -> float:
        """Real expectation value <P> in ``state``.

        ``state`` may be a :class:`Statevector`, a :class:`DensityMatrix`, or a
        raw amplitude vector.
        """
        matrix = self.to_matrix()
        if isinstance(state, Statevector):
            vector = state.data
        elif isinstance(state, DensityMatrix):
            return float(np.real(np.trace(matrix @ state.data)))
        else:
            vector = np.asarray(state, dtype=complex).ravel()
        if vector.shape[0] != matrix.shape[0]:
            raise ValueError("state dimension does not match the Pauli string")
        return float(np.real(np.vdot(vector, matrix @ vector)))

    def __str__(self) -> str:
        return self.label


def single_qubit_pauli(pauli: str, qubit: int, num_qubits: int) -> PauliString:
    """A weight-one Pauli string, e.g. ``Z`` on qubit 0 of a 3-qubit register."""
    pauli = pauli.upper()
    if pauli not in _SINGLE or pauli == "I":
        raise ValueError("pauli must be one of X, Y, Z")
    if not 0 <= qubit < num_qubits:
        raise ValueError("qubit out of range")
    characters = ["I"] * num_qubits
    characters[num_qubits - 1 - qubit] = pauli
    return PauliString("".join(characters))


class PauliSum:
    """A real-weighted sum of Pauli strings (an observable)."""

    def __init__(self, terms: Iterable[Tuple[float, Union[str, PauliString]]]):
        parsed: List[Tuple[float, PauliString]] = []
        for coefficient, label in terms:
            string = label if isinstance(label, PauliString) else PauliString(label)
            parsed.append((float(coefficient), string))
        if not parsed:
            raise ValueError("a PauliSum needs at least one term")
        num_qubits = parsed[0][1].num_qubits
        if any(string.num_qubits != num_qubits for _, string in parsed):
            raise ValueError("all terms must act on the same number of qubits")
        self.terms: Tuple[Tuple[float, PauliString], ...] = tuple(parsed)
        self.num_qubits = num_qubits

    def to_matrix(self) -> np.ndarray:
        """Dense matrix of the observable."""
        dim = 2 ** self.num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for coefficient, string in self.terms:
            matrix += coefficient * string.to_matrix()
        return matrix

    def expectation(self, state: _StateLike) -> float:
        """Expectation value of the observable in ``state``."""
        return float(sum(coefficient * string.expectation(state)
                         for coefficient, string in self.terms))

    def simplified(self) -> "PauliSum":
        """Merge duplicate labels and drop zero coefficients."""
        merged: Dict[str, float] = {}
        for coefficient, string in self.terms:
            merged[string.label] = merged.get(string.label, 0.0) + coefficient
        remaining = [(value, label) for label, value in merged.items()
                     if abs(value) > 1e-15]
        if not remaining:
            remaining = [(0.0, "I" * self.num_qubits)]
        return PauliSum(remaining)

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        body = " + ".join(f"{coeff:g}*{string}" for coeff, string in self.terms)
        return f"PauliSum({body})"
