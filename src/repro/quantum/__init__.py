"""Quantum-computing substrate: circuit IR, simulators, noise, and transpilation.

This subpackage is a from-scratch replacement for the slice of Qiskit / Qiskit Aer
functionality that the Quorum paper depends on:

* :mod:`repro.quantum.gates` -- gate matrices and parameterized gate factories.
* :mod:`repro.quantum.circuit` -- a :class:`QuantumCircuit` IR with unitary gates,
  reset, mid-/end-circuit measurement, and barriers.
* :mod:`repro.quantum.statevector` -- pure-state simulation utilities.
* :mod:`repro.quantum.density_matrix` -- exact mixed-state evolution (needed for the
  partial-reset bottleneck of the Quorum ansatz and for noise channels).
* :mod:`repro.quantum.simulator` -- shot-based execution engines on top of the two
  state representations.
* :mod:`repro.quantum.noise` -- Kraus channels and the :class:`NoiseModel` container.
* :mod:`repro.quantum.backend` -- pluggable batched simulation backends (the
  einsum/tensordot kernels the simulators and SWAP-test engines run on).
* :mod:`repro.quantum.backends` -- calibration-style descriptions of fake devices
  (notably a Brisbane-like backend built from the medians quoted in the paper).
* :mod:`repro.quantum.transpiler` -- basis decomposition and peephole optimization.
* :mod:`repro.quantum.compiler` -- ahead-of-time lowering of circuits (plus noise
  models) into cached programs of fused dense operators.
* :mod:`repro.quantum.operators` -- partial trace, fidelity, purity helpers.
"""

from repro.quantum.backend import (
    NumpyBackend,
    SimulationBackend,
    available_simulation_backends,
    get_simulation_backend,
    register_simulation_backend,
)
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.compiler import (
    CircuitCompiler,
    CompiledProgram,
    FusedOperator,
    default_compiler,
)
from repro.quantum.gates import GATE_MATRICES, standard_gate_matrix
from repro.quantum.simulator import (
    DensityMatrixSimulator,
    ExecutionResult,
    StatevectorSimulator,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.backends import FakeBrisbane, BackendProperties
from repro.quantum.statevector import Statevector
from repro.quantum.density_matrix import DensityMatrix

__all__ = [
    "SimulationBackend",
    "NumpyBackend",
    "available_simulation_backends",
    "get_simulation_backend",
    "register_simulation_backend",
    "Instruction",
    "QuantumCircuit",
    "CircuitCompiler",
    "CompiledProgram",
    "FusedOperator",
    "default_compiler",
    "GATE_MATRICES",
    "standard_gate_matrix",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "ExecutionResult",
    "NoiseModel",
    "FakeBrisbane",
    "BackendProperties",
    "Statevector",
    "DensityMatrix",
]
