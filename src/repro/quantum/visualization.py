"""Plain-text circuit drawing.

A small renderer producing fixed-width diagrams of :class:`QuantumCircuit`
objects, e.g. for the examples and for debugging ansatz construction::

    q0: ─[RX(1.05)]─[RZ(0.52)]─●────────
    q1: ────────────────────────X────●───
    q2: ─────────────────────────────X───

The output is intentionally simple (one column per instruction); it is not meant
to compete with Qiskit's drawer, only to make circuits inspectable in a terminal.
"""

from __future__ import annotations

from typing import List

from repro.quantum.circuit import Instruction, QuantumCircuit

__all__ = ["draw_circuit"]

_CONTROL = "●"
_TARGET_X = "X"
_SWAP = "x"


def _gate_label(instruction: Instruction) -> str:
    name = instruction.name.upper()
    if instruction.params:
        params = ",".join(f"{value:.2f}" for value in instruction.params)
        return f"[{name}({params})]"
    return f"[{name}]"


def _column_for(instruction: Instruction, num_qubits: int) -> List[str]:
    """Per-qubit cell strings for one instruction column."""
    cells = ["" for _ in range(num_qubits)]
    name = instruction.name
    qubits = instruction.qubits
    if name == "barrier":
        for qubit in qubits:
            cells[qubit] = "░"
        return cells
    if name == "measure":
        cells[qubits[0]] = f"[M->c{instruction.clbits[0]}]"
        return cells
    if name == "reset":
        cells[qubits[0]] = "[|0>]"
        return cells
    if name == "initialize":
        for qubit in qubits:
            cells[qubit] = "[INIT]"
        return cells
    if name in {"cx", "cy", "cz", "ch", "crx", "cry", "crz", "cp"}:
        control, target = qubits
        cells[control] = _CONTROL
        label = name[1:].upper()
        if instruction.params:
            label += f"({instruction.params[0]:.2f})"
        cells[target] = _TARGET_X if name == "cx" else f"[{label}]"
        return cells
    if name == "swap":
        cells[qubits[0]] = _SWAP
        cells[qubits[1]] = _SWAP
        return cells
    if name == "cswap":
        cells[qubits[0]] = _CONTROL
        cells[qubits[1]] = _SWAP
        cells[qubits[2]] = _SWAP
        return cells
    if name == "ccx":
        cells[qubits[0]] = _CONTROL
        cells[qubits[1]] = _CONTROL
        cells[qubits[2]] = _TARGET_X
        return cells
    # Generic single- or multi-qubit boxed gate.
    label = _gate_label(instruction)
    for qubit in qubits:
        cells[qubit] = label
    return cells


def draw_circuit(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render ``circuit`` as fixed-width text.

    Parameters
    ----------
    circuit:
        Circuit to draw.
    max_width:
        Wrap the diagram into stacked blocks at roughly this character width.
    """
    num_qubits = circuit.num_qubits
    columns: List[List[str]] = [
        _column_for(instruction, num_qubits) for instruction in circuit.instructions
    ]
    if not columns:
        return "\n".join(f"q{qubit}: ───" for qubit in range(num_qubits))

    widths = []
    for column in columns:
        longest = max((len(cell) for cell in column if cell), default=1)
        widths.append(longest + 2)

    # Vertical connector positions for multi-qubit columns.
    spans = []
    for instruction in circuit.instructions:
        touched = instruction.qubits
        spans.append((min(touched), max(touched)) if len(touched) > 1 else None)

    prefix_width = len(f"q{num_qubits - 1}: ")
    blocks: List[List[str]] = []
    current: List[str] = [f"q{qubit}: ".ljust(prefix_width) for qubit in range(num_qubits)]
    current_width = prefix_width

    def flush() -> None:
        nonlocal current, current_width
        blocks.append(current)
        current = [f"q{qubit}: ".ljust(prefix_width) for qubit in range(num_qubits)]
        current_width = prefix_width

    for column, width, span in zip(columns, widths, spans):
        if current_width + width > max_width and current_width > prefix_width:
            flush()
        for qubit in range(num_qubits):
            cell = column[qubit]
            if not cell and span is not None and span[0] < qubit < span[1]:
                cell = "│"
            rendered = cell.center(width, "─") if cell != "│" else "│".center(width, "─")
            if not cell:
                rendered = "─" * width
            current[qubit] += rendered
        current_width += width
    flush()

    lines: List[str] = []
    for index, block in enumerate(blocks):
        if index:
            lines.append("")
        lines.extend(block)
    return "\n".join(lines)
