"""Gate matrices for the simulator and transpiler.

All matrices follow the little-endian qubit convention used throughout the package:
for a multi-qubit gate acting on qubits ``(q0, q1, ...)``, index 0 of the matrix's
tensor factors corresponds to the *first* qubit in the tuple, and basis states are
ordered so that the first listed qubit is the least-significant bit.  This matches
Qiskit's convention, which the paper's artifact uses.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, Sequence

import numpy as np

__all__ = [
    "GATE_MATRICES",
    "PARAMETRIC_GATES",
    "GATE_NUM_QUBITS",
    "standard_gate_matrix",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "phase_matrix",
    "u_matrix",
    "controlled",
    "is_unitary",
]

_SQRT2_INV = 1.0 / math.sqrt(2.0)

I2 = np.eye(2, dtype=complex)

X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
Y = np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex)
Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
H = np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex)
S = np.array([[1.0, 0.0], [0.0, 1.0j]], dtype=complex)
SDG = np.array([[1.0, 0.0], [0.0, -1.0j]], dtype=complex)
T = np.array([[1.0, 0.0], [0.0, cmath.exp(1.0j * math.pi / 4.0)]], dtype=complex)
TDG = np.array([[1.0, 0.0], [0.0, cmath.exp(-1.0j * math.pi / 4.0)]], dtype=complex)
SX = 0.5 * np.array(
    [[1.0 + 1.0j, 1.0 - 1.0j], [1.0 - 1.0j, 1.0 + 1.0j]], dtype=complex
)
SXDG = SX.conj().T.copy()


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta`` radians."""
    half = theta / 2.0
    return np.array(
        [
            [math.cos(half), -1.0j * math.sin(half)],
            [-1.0j * math.sin(half), math.cos(half)],
        ],
        dtype=complex,
    )


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta`` radians."""
    half = theta / 2.0
    return np.array(
        [
            [math.cos(half), -math.sin(half)],
            [math.sin(half), math.cos(half)],
        ],
        dtype=complex,
    )


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta`` radians."""
    half = theta / 2.0
    return np.array(
        [
            [cmath.exp(-1.0j * half), 0.0],
            [0.0, cmath.exp(1.0j * half)],
        ],
        dtype=complex,
    )


def phase_matrix(lam: float) -> np.ndarray:
    """Phase gate: diag(1, e^{i lambda})."""
    return np.array([[1.0, 0.0], [0.0, cmath.exp(1.0j * lam)]], dtype=complex)


def u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary with Euler angles (theta, phi, lambda).

    Matches the OpenQASM / Qiskit ``U`` gate definition.
    """
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -cmath.exp(1.0j * lam) * sin],
            [cmath.exp(1.0j * phi) * sin, cmath.exp(1.0j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def rxx_matrix(theta: float) -> np.ndarray:
    """Two-qubit XX interaction rotation."""
    cos = math.cos(theta / 2.0)
    isin = -1.0j * math.sin(theta / 2.0)
    mat = np.zeros((4, 4), dtype=complex)
    mat[0, 0] = mat[1, 1] = mat[2, 2] = mat[3, 3] = cos
    mat[0, 3] = mat[3, 0] = isin
    mat[1, 2] = mat[2, 1] = isin
    return mat


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit ZZ interaction rotation."""
    phase = cmath.exp(-1.0j * theta / 2.0)
    conj = cmath.exp(1.0j * theta / 2.0)
    return np.diag([phase, conj, conj, phase]).astype(complex)


def controlled(matrix: np.ndarray) -> np.ndarray:
    """Return the controlled version of ``matrix``.

    The control qubit is the first qubit of the returned gate (little endian), i.e.
    the block structure is ``|0><0| (x) I + |1><1| (x) U`` in the convention where
    the control qubit is the least significant bit.
    """
    dim = matrix.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    # Little endian: control = qubit 0 (LSB).  Basis index = control + 2 * target.
    for row in range(dim):
        for col in range(dim):
            out[2 * row + 1, 2 * col + 1] = matrix[row, col]
    return out


def _swap_matrix() -> np.ndarray:
    mat = np.zeros((4, 4), dtype=complex)
    mat[0, 0] = mat[3, 3] = 1.0
    mat[1, 2] = mat[2, 1] = 1.0
    return mat


def _cx_matrix() -> np.ndarray:
    # Control = first qubit (LSB), target = second qubit.
    return controlled(X)


def _cz_matrix() -> np.ndarray:
    return controlled(Z)


def _cy_matrix() -> np.ndarray:
    return controlled(Y)


def _ch_matrix() -> np.ndarray:
    return controlled(H)


def _ccx_matrix() -> np.ndarray:
    return controlled(controlled(X))


def _cswap_matrix() -> np.ndarray:
    return controlled(_swap_matrix())


SWAP = _swap_matrix()
CX = _cx_matrix()
CZ = _cz_matrix()
CY = _cy_matrix()
CH = _ch_matrix()
CCX = _ccx_matrix()
CSWAP = _cswap_matrix()

#: Matrices of non-parametric standard gates, keyed by lowercase gate name.
GATE_MATRICES: Dict[str, np.ndarray] = {
    "id": I2,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "sxdg": SXDG,
    "swap": SWAP,
    "cx": CX,
    "cz": CZ,
    "cy": CY,
    "ch": CH,
    "ccx": CCX,
    "cswap": CSWAP,
}

#: Factories for parametric gates, keyed by lowercase gate name.
PARAMETRIC_GATES: Dict[str, Callable[..., np.ndarray]] = {
    "rx": rx_matrix,
    "ry": ry_matrix,
    "rz": rz_matrix,
    "p": phase_matrix,
    "u": u_matrix,
    "crx": lambda theta: controlled(rx_matrix(theta)),
    "cry": lambda theta: controlled(ry_matrix(theta)),
    "crz": lambda theta: controlled(rz_matrix(theta)),
    "cp": lambda lam: controlled(phase_matrix(lam)),
    "rxx": rxx_matrix,
    "rzz": rzz_matrix,
}

#: Number of qubits each standard gate acts on.
GATE_NUM_QUBITS: Dict[str, int] = {
    "id": 1,
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "sx": 1,
    "sxdg": 1,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u": 1,
    "swap": 2,
    "cx": 2,
    "cz": 2,
    "cy": 2,
    "ch": 2,
    "crx": 2,
    "cry": 2,
    "crz": 2,
    "cp": 2,
    "rxx": 2,
    "rzz": 2,
    "ccx": 3,
    "cswap": 3,
}


def standard_gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix of a standard gate.

    Parameters
    ----------
    name:
        Lowercase gate name (e.g. ``"rx"``, ``"cx"``).
    params:
        Gate parameters for parametric gates; must be empty for fixed gates.

    Raises
    ------
    KeyError
        If the gate name is unknown.
    ValueError
        If the number of parameters does not match the gate definition.
    """
    key = name.lower()
    if key in GATE_MATRICES:
        if params:
            raise ValueError(f"gate '{name}' takes no parameters, got {list(params)}")
        return GATE_MATRICES[key]
    if key in PARAMETRIC_GATES:
        factory = PARAMETRIC_GATES[key]
        try:
            return factory(*params)
        except TypeError as exc:
            raise ValueError(
                f"gate '{name}' received an invalid parameter list {list(params)}"
            ) from exc
    raise KeyError(f"unknown gate '{name}'")


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check whether ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0], dtype=complex)
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))
