"""Basis decomposition and peephole optimization passes.

The Quorum circuits are written in terms of amplitude initialization, RX/RZ
rotations, CX, H, and CSWAP (for the SWAP test).  Real devices (and realistic
noise accounting) require lowering to a restricted basis such as IBM's
``{rz, sx, x, cx}``.  This module provides that lowering plus a handful of cheap
optimization passes, all of which are verified unitary-equivalent (up to global
phase) in the test suite.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.quantum.circuit import Instruction, QuantumCircuit

__all__ = [
    "euler_zyz_angles",
    "decompose_single_qubit",
    "decompose_instruction",
    "transpile",
    "merge_adjacent_rotations",
    "cancel_adjacent_self_inverse",
    "drop_trivial_gates",
    "optimize_instructions",
    "unitaries_equivalent",
]

_TWO_PI = 2.0 * math.pi

#: Gates that square to the identity (used by the cancellation pass).
_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cz", "cy", "swap", "ccx", "cswap", "id"}

#: Rotation gates whose adjacent instances can be merged by summing angles.
_MERGEABLE_ROTATIONS = {"rx", "ry", "rz", "p", "rzz", "rxx", "crx", "cry", "crz", "cp"}

SUPPORTED_BASES: Tuple[Tuple[str, ...], ...] = (
    ("rz", "sx", "x", "cx"),
    ("rz", "rx", "cx"),
)


def euler_zyz_angles(unitary: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``e^{i alpha} RZ(a) RY(b) RZ(c)``.

    Returns ``(alpha, a, b, c)``.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError("expected a single-qubit unitary")
    determinant = np.linalg.det(unitary)
    alpha = cmath.phase(determinant) / 2.0
    special = unitary * cmath.exp(-1.0j * alpha)
    b = 2.0 * math.atan2(abs(special[1, 0]), abs(special[0, 0]))
    if abs(special[0, 0]) < 1e-12:
        # cos(b/2) == 0: only a - c is determined.
        a = 2.0 * cmath.phase(special[1, 0])
        c = 0.0
    elif abs(special[1, 0]) < 1e-12:
        # sin(b/2) == 0: only a + c is determined.
        a = 2.0 * cmath.phase(special[1, 1])
        c = 0.0
    else:
        plus = 2.0 * cmath.phase(special[1, 1])
        minus = 2.0 * cmath.phase(special[1, 0])
        a = (plus + minus) / 2.0
        c = (plus - minus) / 2.0
    return alpha, a, b, c


def decompose_single_qubit(unitary: np.ndarray, qubit: int,
                           basis: Sequence[str]) -> List[Instruction]:
    """Decompose a single-qubit unitary into the requested basis.

    Global phase is discarded (it never affects measurement statistics).
    """
    basis = tuple(basis)
    _, a, b, c = euler_zyz_angles(unitary)
    instructions: List[Instruction] = []
    if "rx" in basis:
        # RY(b) = RZ(pi/2) RX(b) RZ(-pi/2)  =>  U ~ RZ(a + pi/2) RX(b) RZ(c - pi/2).
        angles = [("rz", a + math.pi / 2.0), ("rx", b), ("rz", c - math.pi / 2.0)]
    elif "sx" in basis:
        # ZXZXZ form: U ~ RZ(a) SX RZ(pi - b) SX RZ(pi + c), applied right-to-left.
        angles = [("rz", a), ("sx", None), ("rz", math.pi - b), ("sx", None),
                  ("rz", math.pi + c)]
    else:
        raise ValueError(f"unsupported single-qubit basis {basis}")
    # The angle list above is written left-to-right as matrix products (leftmost is
    # applied last); circuits list instructions in application order, so reverse.
    for name, angle in reversed(angles):
        if angle is None:
            instructions.append(Instruction(name=name, qubits=(qubit,)))
            continue
        angle = _wrap_angle(angle)
        if abs(angle) < 1e-12:
            continue
        instructions.append(Instruction(name=name, qubits=(qubit,), params=(angle,)))
    return instructions


def _wrap_angle(angle: float) -> float:
    """Wrap an angle into (-pi, pi] for canonical comparison and pruning."""
    wrapped = math.fmod(angle, _TWO_PI)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    elif wrapped <= -math.pi:
        wrapped += _TWO_PI
    return wrapped


#: Controlled single-qubit gates and the matrix applied to the target.
_CONTROLLED_BASE = {
    "cz": lambda params: np.array([[1, 0], [0, -1]], dtype=complex),
    "cy": lambda params: np.array([[0, -1j], [1j, 0]], dtype=complex),
    "ch": lambda params: (1.0 / math.sqrt(2.0)) * np.array([[1, 1], [1, -1]],
                                                           dtype=complex),
    "crx": lambda params: _rotation_matrix("rx", params[0]),
    "cry": lambda params: _rotation_matrix("ry", params[0]),
    "crz": lambda params: _rotation_matrix("rz", params[0]),
    "cp": lambda params: np.array([[1, 0], [0, cmath.exp(1j * params[0])]],
                                  dtype=complex),
}


def _rotation_matrix(name: str, theta: float) -> np.ndarray:
    from repro.quantum.gates import rx_matrix, ry_matrix, rz_matrix

    return {"rx": rx_matrix, "ry": ry_matrix, "rz": rz_matrix}[name](theta)


def controlled_unitary_decomposition(base_unitary: np.ndarray, control: int,
                                     target: int) -> List[Instruction]:
    """ABC decomposition of a controlled single-qubit unitary.

    Writes ``U = e^{i alpha} Rz(a) Ry(b) Rz(c)`` and emits
    ``C; CX; B; CX; A; P(alpha) on control`` with ``A B C = I`` and
    ``A X B X C = U`` (up to the tracked phase), the textbook construction.
    """
    alpha, a, b, c = euler_zyz_angles(base_unitary)
    sequence: List[Instruction] = []

    def gate(gate_name: str, qubits: Tuple[int, ...], *params: float) -> None:
        sequence.append(Instruction(name=gate_name, qubits=qubits,
                                     params=tuple(params)))

    # C = Rz((c - a) / 2)
    gate("rz", (target,), (c - a) / 2.0)
    gate("cx", (control, target))
    # B = Ry(-b / 2) Rz(-(a + c) / 2)   (rightmost factor applied first)
    gate("rz", (target,), -(a + c) / 2.0)
    gate("ry", (target,), -b / 2.0)
    gate("cx", (control, target))
    # A = Rz(a) Ry(b / 2)
    gate("ry", (target,), b / 2.0)
    gate("rz", (target,), a)
    if abs(_wrap_angle(alpha)) > 1e-12:
        gate("p", (control,), alpha)
    return sequence


def _two_qubit_decomposition(instruction: Instruction) -> List[Instruction]:
    """Rewrite standard two-qubit gates in terms of {1q gates, cx}."""
    name = instruction.name
    gates: List[Instruction] = []

    def gate(gate_name: str, qubits: Tuple[int, ...], *params: float) -> None:
        gates.append(Instruction(name=gate_name, qubits=qubits,
                                 params=tuple(params)))

    if name == "cx":
        return [instruction]
    if name in _CONTROLLED_BASE:
        control, target = instruction.qubits
        base = _CONTROLLED_BASE[name](instruction.params)
        return controlled_unitary_decomposition(base, control, target)
    if name == "swap":
        qubit_a, qubit_b = instruction.qubits
        gate("cx", (qubit_a, qubit_b))
        gate("cx", (qubit_b, qubit_a))
        gate("cx", (qubit_a, qubit_b))
        return gates
    if name == "rzz":
        (theta,) = instruction.params
        qubit_a, qubit_b = instruction.qubits
        gate("cx", (qubit_a, qubit_b))
        gate("rz", (qubit_b,), theta)
        gate("cx", (qubit_a, qubit_b))
        return gates
    if name == "rxx":
        (theta,) = instruction.params
        qubit_a, qubit_b = instruction.qubits
        gate("h", (qubit_a,))
        gate("h", (qubit_b,))
        gate("cx", (qubit_a, qubit_b))
        gate("rz", (qubit_b,), theta)
        gate("cx", (qubit_a, qubit_b))
        gate("h", (qubit_a,))
        gate("h", (qubit_b,))
        return gates
    if name == "unitary":
        raise ValueError("generic two-qubit unitaries require a KAK decomposition, "
                         "which is out of scope; build the gate from the standard set")
    raise ValueError(f"no decomposition registered for two-qubit gate '{name}'")


def _three_qubit_decomposition(instruction: Instruction) -> List[Instruction]:
    """Rewrite Toffoli / Fredkin in terms of {1q gates, cx}."""
    name = instruction.name
    gates: List[Instruction] = []

    def gate(gate_name: str, qubits: Tuple[int, ...], *params: float) -> None:
        gates.append(Instruction(name=gate_name, qubits=qubits,
                                 params=tuple(params)))

    if name == "ccx":
        control_a, control_b, target = instruction.qubits
        gate("h", (target,))
        gate("cx", (control_b, target))
        gate("tdg", (target,))
        gate("cx", (control_a, target))
        gate("t", (target,))
        gate("cx", (control_b, target))
        gate("tdg", (target,))
        gate("cx", (control_a, target))
        gate("t", (control_b,))
        gate("t", (target,))
        gate("h", (target,))
        gate("cx", (control_a, control_b))
        gate("t", (control_a,))
        gate("tdg", (control_b,))
        gate("cx", (control_a, control_b))
        return gates
    if name == "cswap":
        control, target_a, target_b = instruction.qubits
        gate("cx", (target_b, target_a))
        gates.extend(
            _three_qubit_decomposition(
                Instruction(name="ccx", qubits=(control, target_a, target_b))
            )
        )
        gate("cx", (target_b, target_a))
        return gates
    raise ValueError(f"no decomposition registered for three-qubit gate '{name}'")


def decompose_instruction(instruction: Instruction,
                          basis: Sequence[str]) -> List[Instruction]:
    """Lower one instruction into the basis (non-unitary instructions pass through)."""
    basis = tuple(name.lower() for name in basis)
    if not instruction.is_unitary or instruction.name == "barrier":
        return [instruction]
    if instruction.name in basis and instruction.name != "unitary":
        return [instruction]
    arity = len(instruction.qubits)
    if arity == 1:
        return decompose_single_qubit(instruction.matrix_or_standard(),
                                      instruction.qubits[0], basis)
    if arity == 2:
        intermediate = _two_qubit_decomposition(instruction)
    elif arity == 3:
        intermediate = _three_qubit_decomposition(instruction)
    else:
        raise ValueError(
            f"cannot decompose {arity}-qubit instruction '{instruction.name}'"
        )
    lowered: List[Instruction] = []
    for part in intermediate:
        lowered.extend(decompose_instruction(part, basis))
    return lowered


# --------------------------------------------------------------------- passes
def drop_trivial_gates(instructions: List[Instruction],
                       atol: float = 1e-12) -> List[Instruction]:
    """Remove identity gates and rotations with (wrapped) angle ~ 0."""
    kept: List[Instruction] = []
    for instruction in instructions:
        if instruction.name == "id":
            continue
        if instruction.name in _MERGEABLE_ROTATIONS:
            angle = _wrap_angle(instruction.params[0])
            if abs(angle) <= atol:
                continue
        kept.append(instruction)
    return kept


def merge_adjacent_rotations(instructions: List[Instruction]) -> List[Instruction]:
    """Merge consecutive same-axis rotations acting on the same qubits."""
    merged: List[Instruction] = []
    for instruction in instructions:
        if (merged
                and instruction.name in _MERGEABLE_ROTATIONS
                and merged[-1].name == instruction.name
                and merged[-1].qubits == instruction.qubits):
            combined = _wrap_angle(merged[-1].params[0] + instruction.params[0])
            merged.pop()
            if abs(combined) > 1e-12:
                merged.append(Instruction(name=instruction.name,
                                          qubits=instruction.qubits,
                                          params=(combined,)))
            continue
        merged.append(instruction)
    return merged


def cancel_adjacent_self_inverse(instructions: List[Instruction]) -> List[Instruction]:
    """Cancel immediately repeated self-inverse gates (e.g. back-to-back CX)."""
    result: List[Instruction] = []
    for instruction in instructions:
        if (result
                and instruction.name in _SELF_INVERSE
                and result[-1].name == instruction.name
                and result[-1].qubits == instruction.qubits):
            result.pop()
            continue
        result.append(instruction)
    return result


def _commutes_past(instruction: Instruction, blocker: Instruction) -> bool:
    """Conservative commutation check: disjoint qubit supports always commute."""
    return not set(instruction.qubits) & set(blocker.qubits)


def optimize_instructions(instructions: List[Instruction],
                          rounds: int = 3) -> List[Instruction]:
    """Run the peephole passes to a fixed point (at most ``rounds`` times).

    Shared by :func:`transpile` and the ahead-of-time circuit compiler in
    :mod:`repro.quantum.compiler`: the result is unitary-equivalent to the
    input up to global phase, but *not* bitwise identical (rotation merging
    re-associates angle sums), so callers that pin bitwise reproducibility
    keep it off.
    """
    current = list(instructions)
    for _ in range(rounds):
        before = len(current)
        current = drop_trivial_gates(current)
        current = merge_adjacent_rotations(current)
        current = cancel_adjacent_self_inverse(current)
        if len(current) == before:
            break
    return current


#: Backwards-compatible alias (the passes predate the public name).
_optimize = optimize_instructions


def transpile(circuit: QuantumCircuit, basis: Sequence[str] = ("rz", "sx", "x", "cx"),
              optimization_level: int = 1) -> QuantumCircuit:
    """Lower ``circuit`` to ``basis`` and optionally run peephole optimization.

    Parameters
    ----------
    circuit:
        Input circuit.  ``initialize``, ``reset``, ``measure`` and barriers are kept
        verbatim (state preparation synthesis lives in :mod:`repro.encoding`).
    basis:
        Target basis gate set; one of :data:`SUPPORTED_BASES` (order irrelevant).
    optimization_level:
        0 = decomposition only, 1 = peephole passes after decomposition.
    """
    basis_set = tuple(sorted(name.lower() for name in basis))
    if basis_set not in {tuple(sorted(b)) for b in SUPPORTED_BASES}:
        raise ValueError(f"unsupported basis {basis}; pick one of {SUPPORTED_BASES}")
    lowered: List[Instruction] = []
    for instruction in circuit.instructions:
        lowered.extend(decompose_instruction(instruction, basis))
    if optimization_level >= 1:
        lowered = optimize_instructions(lowered)
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits,
                         name=f"{circuit.name}_transpiled")
    for instruction in lowered:
        out.append(instruction)
    return out


def unitaries_equivalent(first: np.ndarray, second: np.ndarray,
                         atol: float = 1e-8) -> bool:
    """Check equality of two unitaries up to a global phase."""
    first = np.asarray(first, dtype=complex)
    second = np.asarray(second, dtype=complex)
    if first.shape != second.shape:
        return False
    # Find the largest-magnitude entry of ``first`` to fix the relative phase.
    index = np.unravel_index(np.argmax(np.abs(first)), first.shape)
    if abs(second[index]) < 1e-12:
        return False
    phase = first[index] / second[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(first, phase * second, atol=atol))
