"""Ahead-of-time circuit compilation into fused dense operators.

The simulators in :mod:`repro.quantum.simulator` interpret circuits gate by
gate: every instruction becomes one (or, with noise, two to three) batched
tensor contractions.  For the Quorum workload almost all of that structure is
known before the first sample arrives -- the ansatz is fixed per ensemble
member and the reset+decoder+SWAP-test suffix is identical for every sample --
so this module *lowers* a :class:`~repro.quantum.circuit.QuantumCircuit` (plus
an optional :class:`~repro.quantum.noise.NoiseModel`) into a compiled program
of a few precomposed dense operators that the engines replay with a handful of
batched matmuls.

Three lowerings are provided:

* :meth:`CircuitCompiler.unitary_program` / :meth:`CircuitCompiler.fused_unitary`
  -- pure-state compilation.  Contiguous runs of unitary gates are fused into
  one dense ``2^k x 2^k`` unitary per support block (for the Quorum encoder:
  ONE ``2^n x 2^n`` matrix per member, applied as a single batched matmul).
* :meth:`CircuitCompiler.channel_program` -- mixed-state compilation.  Every
  gate is composed with its noise channel into one superoperator, resets
  become reset channels, and contiguous channel runs are fused into dense
  support-block superoperators (capped at ``max_superop_qubits`` so the fused
  matrices stay cache-sized).  Circuits narrow enough to fit under the cap
  compile to ONE ``4^n x 4^n`` superoperator.
* :meth:`CircuitCompiler.dual_observable` -- Heisenberg-picture compilation of
  a channel followed by a single-qubit readout.  The ancilla projector ``M`` is
  pulled back through the channel's adjoint once, yielding a dense observable
  ``W = C^dagger(M)`` with ``P(1) = <W, rho> = Tr(W^dagger rho)`` -- the whole
  sample-independent suffix collapses to ONE batched matmul against a density
  checkpoint (see
  :meth:`~repro.quantum.backend.SimulationBackend.observable_expectation_density_batch`).

Compiled artifacts live in a thread-safe LRU cache keyed by (program kind,
circuit signature, noise-model fingerprint, backend dtype), so sweeping the
same member across compression levels, ensemble repetitions, or benchmark
rounds never recompiles.  :data:`default_compiler` returns the process-wide
shared instance; `QuorumCircuitFactory`, the execution engines, and the
batched simulator all share it unless given their own.

The gate-by-gate interpreters remain in place as the reference path (select
them with ``compile_circuits=False`` / ``compile_programs=False``); the parity
test suite asserts compiled and interpreted results agree to ``<= 1e-10``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.quantum.backend import SimulationBackend, get_simulation_backend
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.transpiler import optimize_instructions

__all__ = [
    "FusedOperator",
    "CompiledProgram",
    "MemberStackedOperator",
    "MemberStackedProgram",
    "CompilerStats",
    "CircuitCompiler",
    "circuit_signature",
    "structure_signature",
    "noise_model_fingerprint",
    "default_compiler",
]

#: ``FusedOperator.kind`` values.
UNITARY = "unitary"
SUPEROPERATOR = "superoperator"


@dataclass(frozen=True, eq=False)
class FusedOperator:
    """One precomposed dense operator of a compiled program.

    Compared by identity (``eq=False``): a generated ``__eq__`` over the
    ndarray field would raise on truth-value ambiguity, and programs are
    deduplicated by cache key, never by value.

    Attributes
    ----------
    kind:
        ``"unitary"`` (a ``2^k x 2^k`` matrix applied by conjugation /
        state-vector matmul) or ``"superoperator"`` (a ``4^k x 4^k`` channel in
        the row-major vec convention of
        :func:`repro.quantum.density_matrix.kraus_to_superoperator`).
    matrix:
        The dense operator, read-only, in the compiling backend's dtype.
    qubits:
        Ascending global support qubits; the first listed qubit is the
        least-significant index of ``matrix``, matching the backend kernels.
    """

    kind: str
    matrix: np.ndarray
    qubits: Tuple[int, ...]


@dataclass(frozen=True, eq=False)
class CompiledProgram:
    """An ordered sequence of fused operators equivalent to a circuit walk.

    Compared by identity, like :class:`FusedOperator`.
    """

    num_qubits: int
    operators: Tuple[FusedOperator, ...]

    def __len__(self) -> int:
        return len(self.operators)


@dataclass(frozen=True, eq=False)
class MemberStackedOperator:
    """One parameter-stacked operator of a member-stacked program.

    ``matrices`` carries a leading *member* axis: ``matrices[m]`` is the dense
    operator of ensemble member ``m`` for this program position.  All members
    share ``kind`` and ``qubits`` (the stack is only built for circuits with
    equal :func:`structure_signature`), so a backend can dispatch the whole
    ensemble step as one batched contraction.
    """

    kind: str
    matrices: np.ndarray  # (members, dim, dim) or (members, 4^k, 4^k)
    qubits: Tuple[int, ...]


@dataclass(frozen=True, eq=False)
class MemberStackedProgram:
    """A compiled program whose operators carry a leading member axis.

    The parameterized variant of :class:`CompiledProgram`: the structure
    (operator kinds, supports, ordering) is compiled once per signature group
    and the per-member parameters live in the stacked matrices.
    """

    num_qubits: int
    num_members: int
    operators: Tuple[MemberStackedOperator, ...]

    def __len__(self) -> int:
        return len(self.operators)


@dataclass
class CompilerStats:
    """Observable cache behaviour (asserted by the regression tests).

    ``compiles`` counts actual lowerings; ``hits``/``misses`` count cache
    lookups.  A repeated compile of the same (circuit, noise model, dtype)
    must increment ``hits`` and leave ``compiles`` unchanged.
    ``group_compiles`` counts member-stacked artifact builds (one signature
    group stacked into a parameterized program or operator stack).
    """

    compiles: int = 0
    hits: int = 0
    misses: int = 0
    group_compiles: int = 0


def circuit_signature(circuit: QuantumCircuit) -> Tuple:
    """Hashable fingerprint of a circuit's instruction stream.

    Two circuits with equal signatures lower to identical compiled programs:
    the signature covers names, qubits, parameters, classical bits, and the
    raw bytes of explicit ``unitary`` matrices and ``initialize`` payloads.
    """
    items = []
    for instruction in circuit.instructions:
        matrix_key = (instruction.matrix.tobytes()
                      if instruction.matrix is not None else None)
        state_key = (instruction.state.tobytes()
                     if instruction.state is not None else None)
        items.append((instruction.name, instruction.qubits, instruction.params,
                      instruction.clbits, matrix_key, state_key))
    return (circuit.num_qubits, tuple(items))


def structure_signature(circuit: QuantumCircuit) -> Tuple:
    """Hashable fingerprint of a circuit's *structure*, parameters excluded.

    Two circuits with equal structure signatures run the same instruction
    stream over the same qubits and differ only in continuous payloads
    (rotation angles, explicit ``unitary`` matrices, ``initialize`` state
    vectors -- only the payload *shapes* are covered).  Such circuits lower to
    compiled programs with identical block structure, so a whole ensemble of
    them can execute as one member-stacked batch
    (:meth:`CircuitCompiler.member_stacked_channel_program`).
    """
    items = []
    for instruction in circuit.instructions:
        matrix_shape = (instruction.matrix.shape
                        if instruction.matrix is not None else None)
        state_shape = (instruction.state.shape
                       if instruction.state is not None else None)
        items.append((instruction.name, instruction.qubits, instruction.clbits,
                      matrix_shape, state_shape))
    return (circuit.num_qubits, tuple(items))


def noise_model_fingerprint(noise_model: Optional[NoiseModel]) -> Optional[Tuple]:
    """Content-based fingerprint of a noise model (``None`` stays ``None``).

    Delegates to :meth:`repro.quantum.noise.NoiseModel.fingerprint`, so two
    independently built but identical models (e.g. one ``FakeBrisbane`` model
    per ensemble member) share compiled-program cache entries.
    """
    if noise_model is None:
        return None
    return noise_model.fingerprint()


def _reset_superoperator(dtype: np.dtype) -> np.ndarray:
    """Superoperator of the single-qubit reset channel (|0><0|, |0><1|)."""
    zero_zero = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=dtype)
    zero_one = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=dtype)
    return (np.kron(zero_zero, zero_zero.conj())
            + np.kron(zero_one, zero_one.conj()))


@dataclass
class _ChannelOp:
    """One pre-fusion channel step: a unitary or a superoperator on ``qubits``."""

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    is_superoperator: bool


class CircuitCompiler:
    """Lower circuits to compiled programs, memoized in a bounded LRU cache.

    Parameters
    ----------
    max_entries:
        LRU capacity; one entry is one compiled program / fused matrix.
    max_bytes:
        LRU capacity in payload bytes (fused superoperators grow quartically
        with support size, so a count bound alone could pin gigabytes; the
        byte bound evicts least-recently-used programs first, like the count
        bound).
    max_superop_qubits:
        Support-size cap for fused *superoperators* (``4^k x 4^k`` grows
        quartically, so channel fusion is split into blocks of at most this
        many qubits; unitary fusion is uncapped because ``2^k x 2^k`` stays
        tiny for every register this project simulates).
    optimize:
        Run the transpiler's peephole passes (trivial-gate pruning, rotation
        merging, self-inverse cancellation) over unitary runs before fusing.
        Off by default: optimization changes the floating-point operator (only
        up to global phase / 1e-12), while the default compilation is chosen
        to be *bitwise* reproducible against the interpreted reference for
        pure-state paths.  Never applied to noisy compilation, where dropping
        or merging a gate would also drop its noise channel.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 256 * 1024 * 1024,
                 max_superop_qubits: int = 5,
                 optimize: bool = False) -> None:
        if max_entries < 1:
            raise ValueError("the compiled-program cache needs at least one entry")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if max_superop_qubits < 1:
            raise ValueError("max_superop_qubits must be positive")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.max_superop_qubits = int(max_superop_qubits)
        self.optimize = bool(optimize)
        self.stats = CompilerStats()
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cached_bytes = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ cache
    @staticmethod
    def _payload_bytes(value: object) -> int:
        if isinstance(value, np.ndarray):
            return value.nbytes
        if isinstance(value, CompiledProgram):
            return sum(op.matrix.nbytes for op in value.operators)
        if isinstance(value, MemberStackedProgram):
            return sum(op.matrices.nbytes for op in value.operators)
        return 0

    def _get_or_compile(self, key: Tuple, builder: Callable[[], object]) -> object:
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self.stats.hits += 1
                return self._cache[key]
            self.stats.misses += 1
        value = builder()  # compile outside the lock; a duplicate race is benign
        with self._lock:
            self.stats.compiles += 1
            if key not in self._cache:
                self._cached_bytes += self._payload_bytes(value)
            self._cache[key] = value
            self._cache.move_to_end(key)
            while self._cache and (len(self._cache) > self.max_entries
                                   or self._cached_bytes > self.max_bytes):
                _, evicted = self._cache.popitem(last=False)
                self._cached_bytes -= self._payload_bytes(evicted)
        return value

    def cache_size(self) -> int:
        """Number of compiled artifacts currently cached."""
        with self._lock:
            return len(self._cache)

    def cache_bytes(self) -> int:
        """Total payload bytes of the cached artifacts."""
        with self._lock:
            return self._cached_bytes

    def clear(self) -> None:
        """Drop every cached program (stats are kept)."""
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0

    # The lock and cache are per-process state: a compiler travelling to a
    # worker process (e.g. inside a pickled factory) re-starts empty there.
    def __getstate__(self) -> dict:
        return {"max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "max_superop_qubits": self.max_superop_qubits,
                "optimize": self.optimize}

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    # ------------------------------------------------------------ public API
    def unitary_program(self, circuit: QuantumCircuit,
                        backend: Union[str, SimulationBackend, None] = None
                        ) -> CompiledProgram:
        """Compile a purely unitary circuit into one fused dense unitary.

        Barriers are dropped; ``reset``/``measure``/``initialize`` are
        rejected (pure-state compilation has no channel semantics for them).
        The whole gate stream fuses into a single block on the union of the
        gate supports -- every register this project compiles is small enough
        that the dense block unitary stays tiny (``<= 2^9``), so no
        support-size splitting is needed on the pure-state side.
        """
        backend = get_simulation_backend(backend)
        key = ("unitary_program", str(backend.dtype), self.optimize,
               circuit_signature(circuit))
        return self._get_or_compile(
            key, lambda: self._build_unitary_program(circuit, backend))

    def fused_unitary(self, circuit: QuantumCircuit,
                      backend: Union[str, SimulationBackend, None] = None
                      ) -> np.ndarray:
        """The whole circuit as ONE dense full-register unitary (cached).

        This is what the SWAP-test engines use for the member ansatz: the
        encoder circuit collapses to a single ``2^n x 2^n`` matrix applied as
        one batched matmul per sweep.  The construction matches
        :meth:`repro.algorithms.ansatz.RandomAutoencoderAnsatz.encoder_unitary`
        operation for operation, so compiled pure-state results are bitwise
        identical to the interpreted path.
        """
        backend = get_simulation_backend(backend)
        key = ("fused_unitary", str(backend.dtype), self.optimize,
               circuit_signature(circuit))

        def build() -> np.ndarray:
            program = self._build_unitary_program(circuit, backend)
            if (len(program.operators) == 1
                    and program.operators[0].qubits
                    == tuple(range(circuit.num_qubits))):
                return program.operators[0].matrix
            matrix = backend.unitary_from_instructions(
                [(op.matrix, op.qubits) for op in program.operators],
                circuit.num_qubits,
            )
            matrix.setflags(write=False)
            return matrix

        return self._get_or_compile(key, build)

    def channel_program(self, circuit: QuantumCircuit,
                        noise_model: Optional[NoiseModel] = None,
                        backend: Union[str, SimulationBackend, None] = None
                        ) -> CompiledProgram:
        """Compile a sample-independent circuit into fused channel blocks.

        Every unitary gate is composed with its noise channel (looked up once
        per (gate name, qubit count) through the noise model's superoperator
        cache) and every ``reset`` becomes the reset channel; contiguous
        channel steps are fused into dense superoperators on support blocks of
        at most ``max_superop_qubits`` qubits.  Runs that carry no channel at
        all (noiseless gates) fuse into plain unitaries instead, which the
        executor applies by (much cheaper) conjugation.  ``initialize`` is
        rejected -- encoding is sample-dependent and belongs to the prefix.
        """
        backend = get_simulation_backend(backend)
        key = ("channel_program", str(backend.dtype), self.max_superop_qubits,
               circuit_signature(circuit), noise_model_fingerprint(noise_model))
        return self._get_or_compile(
            key,
            lambda: self._build_channel_program(circuit, noise_model, backend))

    def dual_observable(self, circuit: QuantumCircuit,
                        noise_model: Optional[NoiseModel],
                        qubit: int,
                        backend: Union[str, SimulationBackend, None] = None
                        ) -> np.ndarray:
        """Heisenberg-picture observable of (channel, read ``qubit`` = 1).

        Returns the dense matrix ``W = C^dagger(|1><1|_qubit)`` such that the
        probability of measuring ``qubit`` as 1 *after* running ``circuit``
        (with ``noise_model``) from state ``rho`` is ``Re Tr(W^dagger rho)``.
        The adjoint channel is applied to the projector *streamed* step by
        step through the per-instruction channel adjoints (each a one- or
        two-qubit kernel), never materializing the fused forward
        superoperator blocks: a wide noisy suffix's blocks are ``4^k x 4^k``
        (tens of MB each), so building them once per (member, level) used to
        thrash the byte-bounded LRU at ensemble scale, while the observable
        itself is only ``4^n`` complex entries.  One compile replaces a whole
        batched forward replay with a single matmul per batch.
        """
        backend = get_simulation_backend(backend)
        if not 0 <= qubit < circuit.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        key = ("dual_observable", str(backend.dtype), self.max_superop_qubits,
               int(qubit), circuit_signature(circuit),
               noise_model_fingerprint(noise_model))

        def build() -> np.ndarray:
            steps = self._channel_steps(circuit, noise_model, backend)
            dim = 2 ** circuit.num_qubits
            observable = np.zeros((dim, dim), dtype=backend.dtype)
            ones = np.flatnonzero((np.arange(dim) >> qubit) & 1)
            observable[ones, ones] = 1.0
            batch = observable[None, :, :]
            # <M, C(rho)> = <C^dagger(M), rho>: push the projector backwards
            # through each step's adjoint (S^dagger in the Hilbert-Schmidt
            # inner product; U rho U^dagger pulls back to U^dagger M U).
            for op in reversed(steps):
                adjoint = op.matrix.conj().T
                if op.is_superoperator:
                    batch = backend.apply_superoperator_density_batch(
                        batch, adjoint, op.qubits)
                else:
                    batch = backend.apply_gate_density_batch(batch, adjoint,
                                                             op.qubits)
            result = np.ascontiguousarray(batch[0])
            result.setflags(write=False)
            return result

        return self._get_or_compile(key, build)

    def member_stacked_unitary(self, circuits: Sequence[QuantumCircuit],
                               backend: Union[str, SimulationBackend,
                                              None] = None) -> np.ndarray:
        """Stack :meth:`fused_unitary` over a signature group of circuits.

        Returns a read-only ``(members, 2^n, 2^n)`` array -- the parameter
        stack of the group's encoder unitaries, consumed by
        :meth:`~repro.quantum.backend.SimulationBackend.apply_compiled_unitary_member_batch`
        as one batched matmul.  All circuits must share a
        :func:`structure_signature`; per-member fused unitaries are pulled
        from (and populate) the ordinary compiled cache, so stacking after a
        serial run recompiles nothing.
        """
        backend = get_simulation_backend(backend)
        self._require_uniform_structure(circuits)
        key = ("member_stacked_unitary", str(backend.dtype), self.optimize,
               tuple(circuit_signature(circuit) for circuit in circuits))

        def build() -> np.ndarray:
            stack = np.stack([self.fused_unitary(circuit, backend)
                              for circuit in circuits])
            stack.setflags(write=False)
            self.stats.group_compiles += 1
            return stack

        return self._get_or_compile(key, build)

    def member_stacked_dual_observable(self, circuits: Sequence[QuantumCircuit],
                                       noise_model: Optional[NoiseModel],
                                       qubit: int,
                                       backend: Union[str, SimulationBackend,
                                                      None] = None
                                       ) -> np.ndarray:
        """Stack :meth:`dual_observable` over a signature group of circuits.

        Returns a read-only ``(members, 2^n, 2^n)`` observable stack: one
        Heisenberg-picture readout observable per member, so a whole
        ensemble's level step is one member-batched expectation against the
        stacked density checkpoints.
        """
        backend = get_simulation_backend(backend)
        self._require_uniform_structure(circuits)
        key = ("member_stacked_dual_observable", str(backend.dtype),
               self.max_superop_qubits, int(qubit),
               tuple(circuit_signature(circuit) for circuit in circuits),
               noise_model_fingerprint(noise_model))

        def build() -> np.ndarray:
            stack = np.stack([self.dual_observable(circuit, noise_model,
                                                   qubit, backend)
                              for circuit in circuits])
            stack.setflags(write=False)
            self.stats.group_compiles += 1
            return stack

        return self._get_or_compile(key, build)

    def member_stacked_channel_program(self, circuits: Sequence[QuantumCircuit],
                                       noise_model: Optional[NoiseModel] = None,
                                       backend: Union[str, SimulationBackend,
                                                      None] = None
                                       ) -> MemberStackedProgram:
        """Compile a signature group into one parameter-stacked program.

        The structure is lowered once (per-member :meth:`channel_program`
        results share block kinds, supports, and ordering because the
        circuits share a :func:`structure_signature`); the per-member
        operator matrices are stacked along a leading member axis.
        """
        backend = get_simulation_backend(backend)
        self._require_uniform_structure(circuits)
        key = ("member_stacked_channel_program", str(backend.dtype),
               self.max_superop_qubits,
               tuple(circuit_signature(circuit) for circuit in circuits),
               noise_model_fingerprint(noise_model))

        def build() -> MemberStackedProgram:
            programs = [self.channel_program(circuit, noise_model, backend)
                        for circuit in circuits]
            first = programs[0]
            for program in programs[1:]:
                same = (len(program.operators) == len(first.operators)
                        and all(a.kind == b.kind and a.qubits == b.qubits
                                for a, b in zip(program.operators,
                                                first.operators)))
                if not same:
                    raise ValueError(
                        "circuits with equal structure signatures lowered to "
                        "different block shapes; cannot stack the group"
                    )
            operators = tuple(
                MemberStackedOperator(
                    kind=template.kind,
                    matrices=np.stack([program.operators[position].matrix
                                       for program in programs]),
                    qubits=template.qubits,
                )
                for position, template in enumerate(first.operators)
            )
            self.stats.group_compiles += 1
            return MemberStackedProgram(num_qubits=first.num_qubits,
                                        num_members=len(programs),
                                        operators=operators)

        return self._get_or_compile(key, build)

    @staticmethod
    def _require_uniform_structure(circuits: Sequence[QuantumCircuit]) -> None:
        if not circuits:
            raise ValueError("member stacking needs at least one circuit")
        first = structure_signature(circuits[0])
        for circuit in circuits[1:]:
            if structure_signature(circuit) != first:
                raise ValueError(
                    "member-stacked compilation requires a uniform structure "
                    "signature; group the circuits before stacking"
                )

    # -------------------------------------------------------------- lowering
    def _build_unitary_program(self, circuit: QuantumCircuit,
                               backend: SimulationBackend) -> CompiledProgram:
        instructions: List[Instruction] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            if not instruction.is_unitary:
                raise ValueError(
                    "unitary programs cannot contain "
                    f"'{instruction.name}'; use channel_program for circuits "
                    "with reset, or keep initialize in the per-sample prefix"
                )
            instructions.append(instruction)
        if self.optimize:
            instructions = optimize_instructions(instructions)
        operators: List[FusedOperator] = []
        if instructions:
            support = sorted({qubit for instruction in instructions
                              for qubit in instruction.qubits})
            operators.append(self._fused_unitary_block(instructions, support,
                                                       backend))
        return CompiledProgram(num_qubits=circuit.num_qubits,
                               operators=tuple(operators))

    def _fused_unitary_block(self, run: Sequence[Instruction],
                             support: Sequence[int],
                             backend: SimulationBackend) -> FusedOperator:
        """Fuse one gate run into a dense unitary on its (ascending) support."""
        rank = {qubit: position for position, qubit in enumerate(support)}
        remapped = [
            (instruction.matrix_or_standard(),
             tuple(rank[q] for q in instruction.qubits))
            for instruction in run
        ]
        matrix = backend.unitary_from_instructions(remapped, len(support))
        matrix.setflags(write=False)
        return FusedOperator(kind=UNITARY, matrix=matrix,
                             qubits=tuple(int(q) for q in support))

    def _channel_steps(self, circuit: QuantumCircuit,
                       noise_model: Optional[NoiseModel],
                       backend: SimulationBackend) -> List[_ChannelOp]:
        """Per-instruction channel steps (gate composed with its noise).

        The pre-fusion step stream shared by :meth:`channel_program` (which
        fuses runs into dense support blocks) and :meth:`dual_observable`
        (which streams a projector through the step adjoints directly).
        """
        steps: List[_ChannelOp] = []
        for instruction in circuit.instructions:
            name = instruction.name
            if name in {"barrier", "measure"}:
                continue
            if name == "initialize":
                raise ValueError(
                    "channel programs cannot contain initialize; compile only "
                    "the sample-independent part of the circuit"
                )
            if name == "reset":
                steps.append(_ChannelOp(_reset_superoperator(backend.dtype),
                                        instruction.qubits, True))
                continue
            gate = np.asarray(instruction.matrix_or_standard(),
                              dtype=backend.dtype)
            error = (noise_model.error_for_instruction(instruction)
                     if noise_model is not None else None)
            if error is None:
                steps.append(_ChannelOp(gate, instruction.qubits, False))
            elif error.num_qubits != len(instruction.qubits):
                # Channel acts on a sub-block of the gate's qubits: keep the
                # two steps separate, fusion will combine them anyway.
                steps.append(_ChannelOp(gate, instruction.qubits, False))
                steps.append(_ChannelOp(
                    np.asarray(error.superoperator, dtype=backend.dtype),
                    instruction.qubits[: error.num_qubits], True))
            else:
                superop = np.asarray(error.superoperator, dtype=backend.dtype) \
                    @ np.kron(gate, gate.conj())
                steps.append(_ChannelOp(superop, instruction.qubits, True))
        return steps

    def _build_channel_program(self, circuit: QuantumCircuit,
                               noise_model: Optional[NoiseModel],
                               backend: SimulationBackend) -> CompiledProgram:
        steps = self._channel_steps(circuit, noise_model, backend)
        operators: List[FusedOperator] = []
        run: List[_ChannelOp] = []
        support: set = set()
        for step in steps:
            candidate = support | set(step.qubits)
            if run and len(candidate) > self.max_superop_qubits:
                operators.append(self._fused_channel_block(run, sorted(support),
                                                           backend))
                run, support = [], set()
                candidate = set(step.qubits)
            run.append(step)
            support = candidate
        if run:
            operators.append(self._fused_channel_block(run, sorted(support),
                                                       backend))
        return CompiledProgram(num_qubits=circuit.num_qubits,
                               operators=tuple(operators))

    def _fused_channel_block(self, run: Sequence[_ChannelOp],
                             support: Sequence[int],
                             backend: SimulationBackend) -> FusedOperator:
        """Fuse one channel run into a dense operator on its support block.

        A run with no superoperator step fuses to a plain unitary (applied by
        conjugation, which costs a factor ``2^k`` less than a superoperator
        pass).  Otherwise the run's superoperator is built by pushing the
        ``4^k`` basis matrices ``E_rc`` through every step with the ordinary
        backend kernels: column ``m`` of the fused matrix is ``vec(C(E_m))``.
        """
        rank = {qubit: position for position, qubit in enumerate(support)}
        if not any(step.is_superoperator for step in run):
            remapped = [(step.matrix, tuple(rank[q] for q in step.qubits))
                        for step in run]
            matrix = backend.unitary_from_instructions(remapped, len(support))
            matrix.setflags(write=False)
            return FusedOperator(kind=UNITARY, matrix=matrix,
                                 qubits=tuple(int(q) for q in support))
        dim = 2 ** len(support)
        basis = np.eye(dim * dim, dtype=backend.dtype).reshape(dim * dim, dim,
                                                               dim)
        for step in run:
            local = tuple(rank[q] for q in step.qubits)
            if step.is_superoperator:
                basis = backend.apply_superoperator_density_batch(
                    basis, step.matrix, local)
            else:
                basis = backend.apply_gate_density_batch(basis, step.matrix,
                                                         local)
        matrix = np.ascontiguousarray(basis.reshape(dim * dim, dim * dim).T)
        matrix.setflags(write=False)
        return FusedOperator(kind=SUPEROPERATOR, matrix=matrix,
                             qubits=tuple(int(q) for q in support))


#: Process-wide compiler shared by the engines, the batched simulator, and
#: ``QuorumCircuitFactory`` (each can be handed a private instance instead).
_DEFAULT_COMPILER = CircuitCompiler()


def default_compiler() -> CircuitCompiler:
    """The process-wide shared :class:`CircuitCompiler` instance."""
    return _DEFAULT_COMPILER
