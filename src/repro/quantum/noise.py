"""Noise channels and the noise-model container used for noisy simulation.

The paper's noisy runs are modeled on IBM's Brisbane device using median calibration
figures (T1 = 230.42 us, T2 = 143.41 us, single-qubit SX error 2.274e-4, two-qubit
error 2.903e-3, readout error 1.38e-2).  :class:`NoiseModel` turns those figures
into per-gate Kraus channels plus a classical readout confusion matrix, which the
density-matrix simulator applies after every gate and at measurement time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.circuit import Instruction

__all__ = [
    "depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "thermal_relaxation_kraus",
    "bit_flip_kraus",
    "phase_flip_kraus",
    "ReadoutError",
    "QuantumError",
    "NoiseModel",
]

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def depolarizing_kraus(error_probability: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Kraus operators of the ``num_qubits``-qubit depolarizing channel.

    With probability ``error_probability`` the state is replaced by the maximally
    mixed state; equivalently each non-identity Pauli string is applied with equal
    probability ``p / (4^n - 1)``.
    """
    if not 0.0 <= error_probability <= 1.0:
        raise ValueError("error probability must be in [0, 1]")
    labels = ["I", "X", "Y", "Z"]
    strings: List[str] = [""]
    for _ in range(num_qubits):
        strings = [s + p for s in strings for p in labels]
    num_paulis = len(strings)
    kraus: List[np.ndarray] = []
    uniform = error_probability / num_paulis
    for string in strings:
        weight = 1.0 - error_probability + uniform if string == "I" * num_qubits else uniform
        if weight <= 0.0:
            continue
        op = np.array([[1.0]], dtype=complex)
        # First character acts on the first (least-significant) qubit, so build the
        # tensor product with later characters on the left.
        for char in string:
            op = np.kron(_PAULIS[char], op)
        kraus.append(math.sqrt(weight) * op)
    return kraus


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude-damping channel (energy relaxation toward |0>)."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Phase-damping (pure dephasing) channel."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def bit_flip_kraus(probability: float) -> List[np.ndarray]:
    """Bit-flip channel: X applied with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    return [
        math.sqrt(1.0 - probability) * _PAULIS["I"],
        math.sqrt(probability) * _PAULIS["X"],
    ]


def phase_flip_kraus(probability: float) -> List[np.ndarray]:
    """Phase-flip channel: Z applied with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    return [
        math.sqrt(1.0 - probability) * _PAULIS["I"],
        math.sqrt(probability) * _PAULIS["Z"],
    ]


def thermal_relaxation_kraus(t1: float, t2: float, gate_time: float) -> List[np.ndarray]:
    """Thermal relaxation over ``gate_time`` with relaxation times ``t1``/``t2``.

    Built by composing amplitude damping (rate from T1) with pure dephasing (rate
    from the T2 contribution in excess of the T1-induced dephasing).  Times may be
    in any unit as long as all three use the same one.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1:
        raise ValueError("physically, T2 cannot exceed 2*T1")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # Pure dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1).
    t_phi_inverse = max(1.0 / t2 - 1.0 / (2.0 * t1), 0.0)
    lam = 1.0 - math.exp(-2.0 * gate_time * t_phi_inverse)
    damping = amplitude_damping_kraus(gamma)
    dephasing = phase_damping_kraus(lam)
    composed: List[np.ndarray] = []
    for k_damp in damping:
        for k_phase in dephasing:
            composed.append(k_phase @ k_damp)
    return composed


@dataclass(frozen=True)
class ReadoutError:
    """Classical measurement confusion probabilities for one qubit.

    Attributes
    ----------
    prob_1_given_0:
        Probability of reading 1 when the true state is 0.
    prob_0_given_1:
        Probability of reading 1 being reported as 0.
    """

    prob_1_given_0: float
    prob_0_given_1: float

    def __post_init__(self) -> None:
        for value in (self.prob_1_given_0, self.prob_0_given_1):
            if not 0.0 <= value <= 1.0:
                raise ValueError("readout error probabilities must be in [0, 1]")

    @classmethod
    def symmetric(cls, error_probability: float) -> "ReadoutError":
        """Readout error with the same flip probability in both directions."""
        return cls(error_probability, error_probability)

    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix M with M[observed, true] = P(observed | true)."""
        return np.array(
            [
                [1.0 - self.prob_1_given_0, self.prob_0_given_1],
                [self.prob_1_given_0, 1.0 - self.prob_0_given_1],
            ]
        )

    def apply_to_bit(self, bit: int, rng: np.random.Generator) -> int:
        """Flip a single measured bit according to the confusion probabilities."""
        if bit == 0:
            return 1 if rng.random() < self.prob_1_given_0 else 0
        return 0 if rng.random() < self.prob_0_given_1 else 1


@dataclass(frozen=True)
class QuantumError:
    """A gate error expressed as a list of Kraus operators.

    The equivalent superoperator is precomputed so that simulators can apply the
    whole channel with a single tensor contraction instead of one contraction pair
    per Kraus operator.
    """

    kraus_operators: Tuple[np.ndarray, ...]
    num_qubits: int
    superoperator: np.ndarray = field(default=None, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.superoperator is None:
            dim = 2 ** self.num_qubits
            superop = np.zeros((dim * dim, dim * dim), dtype=complex)
            for kraus in self.kraus_operators:
                kraus = np.asarray(kraus, dtype=complex)
                superop += np.kron(kraus, np.conj(kraus))
            object.__setattr__(self, "superoperator", superop)

    @classmethod
    def from_kraus(cls, kraus_operators: Sequence[np.ndarray]) -> "QuantumError":
        """Build from Kraus operators, inferring the qubit count from their size."""
        first = np.asarray(kraus_operators[0])
        num_qubits = int(round(math.log2(first.shape[0])))
        return cls(tuple(np.asarray(k, dtype=complex) for k in kraus_operators),
                   num_qubits)


class NoiseModel:
    """Per-gate Kraus errors plus readout error, applied by the simulators.

    Gate errors are registered by gate name; an error registered for ``"cx"`` is
    applied (on the gate's qubits) after every ``cx`` in the circuit.  The special
    name ``"all_1q"`` / ``"all_2q"`` matches any single-/two-qubit unitary that has
    no more specific entry.
    """

    def __init__(self) -> None:
        self._gate_errors: Dict[str, QuantumError] = {}
        self._readout_error: Optional[ReadoutError] = None
        # (gate name, qubit count) -> resolved QuantumError (or None): the
        # hot simulator loops resolve the same handful of keys millions of
        # times, so the fallback chain below runs once per key, not per gate
        # application.  Invalidated by every builder method.
        self._resolution_cache: Dict[Tuple[str, int], Optional[QuantumError]] = {}
        self._fingerprint: Optional[Tuple] = None

    def _invalidate_caches(self) -> None:
        self._resolution_cache.clear()
        self._fingerprint = None

    # ----------------------------------------------------------------- building
    def add_gate_error(self, gate_name: str, error: QuantumError) -> "NoiseModel":
        """Register a Kraus error to be applied after every ``gate_name`` gate."""
        self._gate_errors[gate_name.lower()] = error
        self._invalidate_caches()
        return self

    def add_all_single_qubit_error(self, error: QuantumError) -> "NoiseModel":
        """Register a default error for every single-qubit unitary."""
        if error.num_qubits != 1:
            raise ValueError("expected a single-qubit error")
        self._gate_errors["all_1q"] = error
        self._invalidate_caches()
        return self

    def add_all_two_qubit_error(self, error: QuantumError) -> "NoiseModel":
        """Register a default error for every two-qubit unitary."""
        if error.num_qubits != 2:
            raise ValueError("expected a two-qubit error")
        self._gate_errors["all_2q"] = error
        self._invalidate_caches()
        return self

    def set_readout_error(self, error: ReadoutError) -> "NoiseModel":
        """Set the measurement confusion probabilities (applied to every qubit)."""
        self._readout_error = error
        self._invalidate_caches()
        return self

    # ------------------------------------------------------------------ queries
    @property
    def readout_error(self) -> Optional[ReadoutError]:
        """The registered readout error, if any."""
        return self._readout_error

    @property
    def is_trivial(self) -> bool:
        """True when the model contains no errors at all."""
        return not self._gate_errors and self._readout_error is None

    def error_for_instruction(self, instruction: Instruction) -> Optional[QuantumError]:
        """Return the Kraus error to apply after ``instruction`` (or None).

        Resolution (and thereby the channel's precomputed superoperator) is
        cached per (gate name, qubit count); the simulators and the circuit
        compiler hit this on every gate, so the lookup must not re-walk the
        fallback chain per application.
        """
        if not instruction.is_unitary:
            return None
        return self._resolve_cached(instruction.name, len(instruction.qubits))

    def superoperator_for(self, gate_name: str,
                          num_qubits: int) -> Optional[np.ndarray]:
        """Cached channel superoperator for a (gate name, qubit count) key.

        Convenience twin of :meth:`error_for_instruction` for callers that
        work with superoperators directly (e.g. ahead-of-time compilation).
        """
        error = self._resolve_cached(gate_name, num_qubits)
        return None if error is None else error.superoperator

    def _resolve_cached(self, gate_name: str,
                        arity: int) -> Optional[QuantumError]:
        key = (gate_name.lower(), int(arity))
        try:
            return self._resolution_cache[key]
        except KeyError:
            pass
        error = self._resolve(*key)
        self._resolution_cache[key] = error
        return error

    def _resolve(self, name: str, arity: int) -> Optional[QuantumError]:
        if name in self._gate_errors:
            return self._gate_errors[name]
        if arity == 1 and "all_1q" in self._gate_errors:
            return self._gate_errors["all_1q"]
        if arity == 2 and "all_2q" in self._gate_errors:
            return self._gate_errors["all_2q"]
        return None

    def fingerprint(self) -> Tuple:
        """Content-based hashable fingerprint (compiled-program cache key part).

        Two independently constructed but identical models (same gate errors,
        same readout confusion) share the fingerprint, so per-member noise
        models built from the same calibration data share compiled programs.
        """
        if self._fingerprint is None:
            gates = tuple(sorted(
                (name, error.num_qubits, error.superoperator.tobytes())
                for name, error in self._gate_errors.items()
            ))
            readout = (None if self._readout_error is None else
                       (self._readout_error.prob_1_given_0,
                        self._readout_error.prob_0_given_1))
            self._fingerprint = (gates, readout)
        return self._fingerprint

    def registered_gate_names(self) -> List[str]:
        """Names with explicit error entries (useful for reporting/tests)."""
        return sorted(self._gate_errors)

    def __repr__(self) -> str:
        readout = "yes" if self._readout_error is not None else "no"
        return (
            f"NoiseModel(gates={sorted(self._gate_errors)}, readout_error={readout})"
        )
