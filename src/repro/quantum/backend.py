"""Batched simulation backends: the numerical kernels behind the engines.

This module is the pluggable *execution backend* layer (not to be confused with
:mod:`repro.quantum.backends`, which describes fake *hardware* devices for noise
modelling).  A :class:`SimulationBackend` owns the low-level batched linear
algebra -- gate application, projective collapse, density-matrix channels,
overlap reductions -- so that the SWAP-test engines in
:mod:`repro.core.execution` and the circuit simulators in
:mod:`repro.quantum.simulator` can push whole sample (and trajectory) batches
through one einsum/tensordot kernel instead of looping in Python.

Batching contract
-----------------
* Every statevector batch is a 2-D complex array of shape ``(batch, 2**n)``;
  every density-matrix batch is ``(batch, 2**n, 2**n)``.  The **leading axis is
  always the batch axis** and is preserved by every primitive.
* Basis indices are little-endian (qubit ``q``'s bit is ``(i >> q) & 1``),
  matching :mod:`repro.quantum.statevector`.
* Arrays are kept in the backend's ``dtype`` (``complex128`` for the numpy
  reference backend); primitives never mutate their inputs.

Backends register themselves by name; select one with
``get_simulation_backend("numpy")`` or pass an instance directly.  The numpy
reference implementation is always available, and alternative implementations
(e.g. GPU array libraries exposing the numpy API) only need to subclass
:class:`SimulationBackend` and call :func:`register_simulation_backend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.quantum.statevector import apply_unitary_to_tensor

__all__ = [
    "SimulationBackend",
    "NumpyBackend",
    "register_simulation_backend",
    "available_simulation_backends",
    "get_simulation_backend",
]


class SimulationBackend(ABC):
    """Batched linear-algebra primitives shared by all execution engines.

    Subclasses provide the array kernels; everything above this layer (circuit
    walking, trajectory branching, shot sampling) is backend-agnostic.  All
    primitives follow the leading-batch-axis contract documented in the module
    docstring.
    """

    #: Registry key of the backend (set by concrete subclasses).
    name: str = "abstract"
    #: Complex dtype used for states and density matrices.
    dtype: np.dtype = np.dtype(np.complex128)

    # ------------------------------------------------------------ statevectors
    @abstractmethod
    def zero_states(self, batch_size: int, num_qubits: int) -> np.ndarray:
        """A ``(batch_size, 2**num_qubits)`` batch of |0...0> states."""

    @abstractmethod
    def as_states(self, amplitudes: np.ndarray) -> np.ndarray:
        """Cast a ``(batch, 2**n)`` amplitude array to the backend dtype."""

    @abstractmethod
    def apply_gate_batch(self, states: np.ndarray, gate: np.ndarray,
                         qubits: Sequence[int]) -> np.ndarray:
        """Apply a ``2^k x 2^k`` gate to ``qubits`` of every state in the batch.

        ``states`` has shape ``(batch, 2**n)``; the gate's row/column index
        treats the first listed qubit as the least-significant bit, exactly as
        in :func:`repro.quantum.statevector.apply_unitary_to_tensor`.
        """

    @abstractmethod
    def apply_unitary_batch(self, states: np.ndarray,
                            unitary: np.ndarray) -> np.ndarray:
        """Apply a dense full-register unitary to every state in the batch."""

    @abstractmethod
    def probability_one_batch(self, states: np.ndarray, qubit: int) -> np.ndarray:
        """P(measuring ``qubit`` = 1) for every state; shape ``(batch,)``."""

    @abstractmethod
    def collapse_qubit_batch(self, states: np.ndarray, qubit: int,
                             outcomes: np.ndarray,
                             reset_to_zero: bool = False) -> np.ndarray:
        """Project ``qubit`` onto per-state ``outcomes`` (0/1) and renormalize.

        With ``reset_to_zero`` the surviving branch is moved into the
        ``qubit = 0`` subspace (measure-and-conditionally-flip reset).
        """

    @abstractmethod
    def overlap_batch(self, states_a: np.ndarray,
                      states_b: np.ndarray) -> np.ndarray:
        """Row-wise fidelity ``|<a_i|b_i>|^2``; shape ``(batch,)``."""

    # --------------------------------------------------------- density matrices
    @abstractmethod
    def density_from_states(self, states: np.ndarray) -> np.ndarray:
        """Pure-state density matrices ``|psi_i><psi_i|``; ``(batch, d, d)``."""

    @abstractmethod
    def apply_gate_density_batch(self, rhos: np.ndarray, gate: np.ndarray,
                                 qubits: Sequence[int]) -> np.ndarray:
        """Conjugate every density matrix by a local gate: ``U rho U^dagger``."""

    @abstractmethod
    def evolve_density_batch(self, rhos: np.ndarray,
                             unitary: np.ndarray) -> np.ndarray:
        """Conjugate every density matrix by a dense full-register unitary."""

    @abstractmethod
    def reset_low_qubits_density_batch(self, rhos: np.ndarray,
                                       num_reset: int) -> np.ndarray:
        """Non-selectively reset qubits ``0 .. num_reset-1`` of every matrix."""

    @abstractmethod
    def expectation_batch(self, rhos: np.ndarray,
                          states: np.ndarray) -> np.ndarray:
        """Row-wise ``<psi_i| rho_i |psi_i>`` (real part); shape ``(batch,)``."""

    # ----------------------------------------------------------------- helpers
    def unitary_from_instructions(
            self, instructions: Sequence[Tuple[np.ndarray, Sequence[int]]],
            num_qubits: int) -> np.ndarray:
        """Dense unitary of a gate sequence, built through the batched kernel.

        The identity's rows are treated as a batch of basis states and pushed
        through every ``(gate, qubits)`` pair at once; row ``i`` of the batch
        ends as ``U |i>``, so the stacked result is ``U^T``.
        """
        dim = 2 ** num_qubits
        states = np.eye(dim, dtype=self.dtype)
        for gate, qubits in instructions:
            states = self.apply_gate_batch(states, gate, qubits)
        return states.T.copy()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"




class NumpyBackend(SimulationBackend):
    """Reference implementation: one ``np.einsum`` contraction per primitive."""

    name = "numpy"

    # ------------------------------------------------------------ statevectors
    def zero_states(self, batch_size: int, num_qubits: int) -> np.ndarray:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        states = np.zeros((batch_size, 2 ** num_qubits), dtype=self.dtype)
        states[:, 0] = 1.0
        return states

    def as_states(self, amplitudes: np.ndarray) -> np.ndarray:
        states = np.asarray(amplitudes, dtype=self.dtype)
        if states.ndim != 2:
            raise ValueError("a state batch must be 2-D (batch, 2**n)")
        return states

    def _num_qubits(self, dim: int) -> int:
        num_qubits = int(np.log2(dim)) if dim else 0
        if 2 ** num_qubits != dim:
            raise ValueError(f"state dimension {dim} is not a power of two")
        return num_qubits

    def apply_gate_batch(self, states: np.ndarray, gate: np.ndarray,
                         qubits: Sequence[int]) -> np.ndarray:
        states = self.as_states(states)
        batch, dim = states.shape
        num_qubits = self._num_qubits(dim)
        qubits = list(qubits)
        k = len(qubits)
        gate = np.asarray(gate, dtype=self.dtype)
        if gate.shape != (2 ** k, 2 ** k):
            raise ValueError(
                f"gate shape {gate.shape} does not match {k} target qubits"
            )
        tensor = states.reshape((batch,) + (2,) * num_qubits)
        # The shared tensordot kernel carries any axes outside the qubit block
        # through untouched, so offsetting by one turns the leading axis into a
        # batch axis and the whole batch contracts in one BLAS call.
        result = apply_unitary_to_tensor(tensor, gate, qubits, num_qubits,
                                         axis_offset=1)
        return np.ascontiguousarray(result).reshape(batch, dim)

    def apply_unitary_batch(self, states: np.ndarray,
                            unitary: np.ndarray) -> np.ndarray:
        states = self.as_states(states)
        unitary = np.asarray(unitary, dtype=self.dtype)
        if unitary.shape != (states.shape[1], states.shape[1]):
            raise ValueError("unitary shape does not match the state dimension")
        # Row i of the result is U |psi_i>.
        return states @ unitary.T

    def probability_one_batch(self, states: np.ndarray, qubit: int) -> np.ndarray:
        states = self.as_states(states)
        batch, dim = states.shape
        num_qubits = self._num_qubits(dim)
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        low = 2 ** qubit
        blocks = states.reshape(batch, dim // (2 * low), 2, low)
        return np.sum(np.abs(blocks[:, :, 1, :]) ** 2, axis=(1, 2))

    def collapse_qubit_batch(self, states: np.ndarray, qubit: int,
                             outcomes: np.ndarray,
                             reset_to_zero: bool = False) -> np.ndarray:
        states = self.as_states(states)
        batch, dim = states.shape
        num_qubits = self._num_qubits(dim)
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        outcomes = np.asarray(outcomes)
        if outcomes.shape != (batch,):
            raise ValueError("outcomes must hold one 0/1 value per state")
        low = 2 ** qubit
        blocks = states.reshape(batch, dim // (2 * low), 2, low).copy()
        ones = outcomes.astype(bool)
        blocks[~ones, :, 1, :] = 0.0
        if reset_to_zero:
            blocks[ones, :, 0, :] = blocks[ones, :, 1, :]
            blocks[ones, :, 1, :] = 0.0
        else:
            blocks[ones, :, 0, :] = 0.0
        collapsed = blocks.reshape(batch, dim)
        norms = np.linalg.norm(collapsed, axis=1, keepdims=True)
        if np.any(norms < 1e-15):
            raise RuntimeError("collapse produced a zero-norm state; the drawn "
                               "outcome had probability 0")
        return collapsed / norms

    def overlap_batch(self, states_a: np.ndarray,
                      states_b: np.ndarray) -> np.ndarray:
        states_a = self.as_states(states_a)
        states_b = self.as_states(states_b)
        if states_a.shape != states_b.shape:
            raise ValueError("state batches must have identical shapes")
        inner = np.einsum("bi,bi->b", states_a.conj(), states_b)
        return np.abs(inner) ** 2

    # --------------------------------------------------------- density matrices
    def density_from_states(self, states: np.ndarray) -> np.ndarray:
        states = self.as_states(states)
        return np.einsum("bi,bj->bij", states, states.conj())

    def apply_gate_density_batch(self, rhos: np.ndarray, gate: np.ndarray,
                                 qubits: Sequence[int]) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        batch, dim = rhos.shape[0], rhos.shape[1]
        num_qubits = self._num_qubits(dim)
        qubits = list(qubits)
        k = len(qubits)
        gate = np.asarray(gate, dtype=self.dtype)
        if gate.shape != (2 ** k, 2 ** k):
            raise ValueError("gate shape does not match the target qubits")
        tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
        # U on the row indices, conj(U) on the column indices; the leading axis
        # stays a batch axis in both contractions.
        tensor = apply_unitary_to_tensor(tensor, gate, qubits, num_qubits,
                                         axis_offset=1)
        tensor = apply_unitary_to_tensor(tensor, np.conj(gate), qubits,
                                         num_qubits,
                                         axis_offset=1 + num_qubits)
        return np.ascontiguousarray(tensor).reshape(batch, dim, dim)

    def evolve_density_batch(self, rhos: np.ndarray,
                             unitary: np.ndarray) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        unitary = np.asarray(unitary, dtype=self.dtype)
        if rhos.ndim != 3 or unitary.shape != rhos.shape[1:]:
            raise ValueError("unitary shape does not match the density batch")
        return unitary @ rhos @ unitary.conj().T

    def reset_low_qubits_density_batch(self, rhos: np.ndarray,
                                       num_reset: int) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        if num_reset == 0:
            return rhos.copy()
        batch, dim = rhos.shape[0], rhos.shape[1]
        num_qubits = self._num_qubits(dim)
        if not 0 <= num_reset <= num_qubits:
            raise ValueError("num_reset out of range")
        reset_dim = 2 ** num_reset
        kept_dim = dim // reset_dim
        # Little-endian: the reset qubits are the fastest-varying index block.
        blocks = rhos.reshape(batch, kept_dim, reset_dim, kept_dim, reset_dim)
        traced = np.einsum("bksls->bkl", blocks)
        result = np.zeros_like(blocks)
        result[:, :, 0, :, 0] = traced
        return result.reshape(batch, dim, dim)

    def expectation_batch(self, rhos: np.ndarray,
                          states: np.ndarray) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        states = self.as_states(states)
        if rhos.ndim != 3 or rhos.shape[:2] != states.shape:
            raise ValueError("density batch does not match the state batch")
        values = np.einsum("bi,bij,bj->b", states.conj(), rhos, states)
        return np.real(values)


_REGISTRY: Dict[str, Callable[[], SimulationBackend]] = {}


def register_simulation_backend(name: str,
                                factory: Callable[[], SimulationBackend]) -> None:
    """Register a backend factory under ``name`` (lowercased)."""
    _REGISTRY[name.lower()] = factory


def available_simulation_backends() -> Tuple[str, ...]:
    """Names of all registered simulation backends."""
    return tuple(sorted(_REGISTRY))


def get_simulation_backend(
        backend: Optional[Union[str, SimulationBackend]] = None
) -> SimulationBackend:
    """Resolve a backend name or instance; ``None`` means the numpy default."""
    if backend is None:
        backend = "numpy"
    if isinstance(backend, SimulationBackend):
        return backend
    key = str(backend).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"available: {', '.join(available_simulation_backends())}"
        )
    return _REGISTRY[key]()


register_simulation_backend("numpy", NumpyBackend)
