"""Batched simulation backends: the numerical kernels behind the engines.

This module is the pluggable *execution backend* layer (not to be confused with
:mod:`repro.quantum.backends`, which describes fake *hardware* devices for noise
modelling).  A :class:`SimulationBackend` owns the low-level batched linear
algebra -- gate application, projective collapse, density-matrix channels,
overlap reductions -- so that the SWAP-test engines in
:mod:`repro.core.execution` and the circuit simulators in
:mod:`repro.quantum.simulator` can push whole sample (and trajectory) batches
through one einsum/tensordot kernel instead of looping in Python.

Batching contract
-----------------
* Every statevector batch is a 2-D complex array of shape ``(batch, 2**n)``;
  every density-matrix batch is ``(batch, 2**n, 2**n)``.  The **leading axis is
  always the batch axis** and is preserved by every primitive.
* Basis indices are little-endian (qubit ``q``'s bit is ``(i >> q) & 1``),
  matching :mod:`repro.quantum.statevector`.
* Arrays are kept in the backend's ``dtype`` (``complex128`` for the numpy
  reference backend); primitives never mutate their inputs.

Backends register themselves by name; select one with
``get_simulation_backend("numpy")`` or pass an instance directly.  The numpy
reference implementation is always available, and alternative implementations
(e.g. GPU array libraries exposing the numpy API) only need to subclass
:class:`SimulationBackend` and call :func:`register_simulation_backend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.quantum.statevector import apply_unitary_to_tensor

__all__ = [
    "SimulationBackend",
    "NumpyBackend",
    "NumpyFloat32Backend",
    "register_simulation_backend",
    "available_simulation_backends",
    "get_simulation_backend",
]


class SimulationBackend(ABC):
    """Batched linear-algebra primitives shared by all execution engines.

    Subclasses provide the array kernels; everything above this layer (circuit
    walking, trajectory branching, shot sampling) is backend-agnostic.  All
    primitives follow the leading-batch-axis contract documented in the module
    docstring.
    """

    #: Registry key of the backend (set by concrete subclasses).
    name: str = "abstract"
    #: Complex dtype used for states and density matrices.
    dtype: np.dtype = np.dtype(np.complex128)

    # ------------------------------------------------------------ statevectors
    @abstractmethod
    def zero_states(self, batch_size: int, num_qubits: int) -> np.ndarray:
        """A ``(batch_size, 2**num_qubits)`` batch of |0...0> states."""

    @abstractmethod
    def as_states(self, amplitudes: np.ndarray) -> np.ndarray:
        """Cast a ``(batch, 2**n)`` amplitude array to the backend dtype."""

    @abstractmethod
    def apply_gate_batch(self, states: np.ndarray, gate: np.ndarray,
                         qubits: Sequence[int]) -> np.ndarray:
        """Apply a ``2^k x 2^k`` gate to ``qubits`` of every state in the batch.

        ``states`` has shape ``(batch, 2**n)``; the gate's row/column index
        treats the first listed qubit as the least-significant bit, exactly as
        in :func:`repro.quantum.statevector.apply_unitary_to_tensor`.
        """

    @abstractmethod
    def apply_unitary_batch(self, states: np.ndarray,
                            unitary: np.ndarray) -> np.ndarray:
        """Apply a dense full-register unitary to every state in the batch."""

    @abstractmethod
    def probability_one_batch(self, states: np.ndarray, qubit: int) -> np.ndarray:
        """P(measuring ``qubit`` = 1) for every state; shape ``(batch,)``."""

    @abstractmethod
    def collapse_qubit_batch(self, states: np.ndarray, qubit: int,
                             outcomes: np.ndarray,
                             reset_to_zero: bool = False) -> np.ndarray:
        """Project ``qubit`` onto per-state ``outcomes`` (0/1) and renormalize.

        With ``reset_to_zero`` the surviving branch is moved into the
        ``qubit = 0`` subspace (measure-and-conditionally-flip reset).
        """

    @abstractmethod
    def overlap_batch(self, states_a: np.ndarray,
                      states_b: np.ndarray) -> np.ndarray:
        """Row-wise fidelity ``|<a_i|b_i>|^2``; shape ``(batch,)``."""

    # --------------------------------------------------------- density matrices
    @abstractmethod
    def density_from_states(self, states: np.ndarray) -> np.ndarray:
        """Pure-state density matrices ``|psi_i><psi_i|``; ``(batch, d, d)``."""

    @abstractmethod
    def apply_gate_density_batch(self, rhos: np.ndarray, gate: np.ndarray,
                                 qubits: Sequence[int]) -> np.ndarray:
        """Conjugate every density matrix by a local gate: ``U rho U^dagger``."""

    @abstractmethod
    def evolve_density_batch(self, rhos: np.ndarray,
                             unitary: np.ndarray) -> np.ndarray:
        """Conjugate every density matrix by a dense full-register unitary."""

    @abstractmethod
    def reset_low_qubits_density_batch(self, rhos: np.ndarray,
                                       num_reset: int) -> np.ndarray:
        """Non-selectively reset qubits ``0 .. num_reset-1`` of every matrix."""

    @abstractmethod
    def expectation_batch(self, rhos: np.ndarray,
                          states: np.ndarray) -> np.ndarray:
        """Row-wise ``<psi_i| rho_i |psi_i>`` (real part); shape ``(batch,)``."""

    @abstractmethod
    def apply_gates_density_batch(self, rhos: np.ndarray, gates: np.ndarray,
                                  qubits: Sequence[int]) -> np.ndarray:
        """Conjugate every density matrix by its *own* local gate.

        ``gates`` has shape ``(batch, 2^k, 2^k)``: row ``i`` of the batch is
        conjugated by ``gates[i]``.  This is the per-sample variant of
        :meth:`apply_gate_density_batch`, needed when structurally identical
        circuits carry sample-dependent parameters (e.g. gate-level amplitude
        encoding, where the state-preparation angles differ per sample).
        """

    @abstractmethod
    def apply_superoperator_density_batch(self, rhos: np.ndarray,
                                          superoperator: np.ndarray,
                                          qubits: Sequence[int]) -> np.ndarray:
        """Apply one local channel (superoperator form) to every matrix.

        ``superoperator`` is the ``d^2 x d^2`` matrix produced by
        :func:`repro.quantum.density_matrix.kraus_to_superoperator`, acting on
        the *row-major* flattening of the local density matrix (row index block
        first).  The same channel is applied to every batch entry (noise models
        depend on the gate, not on the sample).
        """

    @abstractmethod
    def apply_superoperators_density_batch(self, rhos: np.ndarray,
                                           superoperators: np.ndarray,
                                           qubits: Sequence[int]) -> np.ndarray:
        """Apply one local channel *per batch entry* (superoperator form).

        ``superoperators`` has shape ``(batch, d^2, d^2)``: channel ``i`` acts on
        density matrix ``i``.  Used by the batched circuit walker to fuse a
        sample-dependent gate with its (shared) noise channel into a single
        contraction over the batch.
        """

    @abstractmethod
    def probability_one_density_batch(self, rhos: np.ndarray,
                                      qubit: int) -> np.ndarray:
        """P(measuring ``qubit`` = 1) from each density matrix; ``(batch,)``."""

    def copy_density_batch(self, rhos: np.ndarray) -> np.ndarray:
        """Snapshot a density batch into fresh backend-owned storage.

        Checkpoint support for the level-sweep walker: the post-prefix density
        batch is snapshotted once and every compression level replays from its
        own copy, so no replay can alias (or mutate) the checkpoint.  The
        default is a dtype-normalizing host copy; array-library backends whose
        buffers live off-host should override this with a device-side copy.
        """
        rhos = np.asarray(rhos, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        return rhos.copy()

    # ------------------------------------------------------ compiled programs
    def apply_compiled_unitary_batch(self, states: np.ndarray,
                                     operators) -> np.ndarray:
        """Run a compiled pure-state program over a state batch.

        ``operators`` is a :class:`repro.quantum.compiler.CompiledProgram` (or
        any iterable of its fused operators): each entry carries a dense
        ``2^k x 2^k`` unitary and its ascending support qubits.  The default
        chains :meth:`apply_gate_batch` per fused block, so every backend
        inherits compiled execution; array-library backends can override to
        run the whole chain on-device.
        """
        for operator in getattr(operators, "operators", operators):
            if operator.kind != "unitary":
                raise ValueError(
                    "a compiled unitary program cannot contain "
                    f"'{operator.kind}' operators"
                )
            states = self.apply_gate_batch(states, operator.matrix,
                                           operator.qubits)
        return states

    def apply_compiled_superoperator_batch(self, rhos: np.ndarray,
                                           operators) -> np.ndarray:
        """Run a compiled channel program over a density batch.

        ``operators`` is a :class:`repro.quantum.compiler.CompiledProgram` (or
        any iterable of its fused operators).  ``"unitary"`` blocks are applied
        by conjugation (:meth:`apply_gate_density_batch`, a factor ``2^k``
        cheaper than a superoperator pass), ``"superoperator"`` blocks through
        :meth:`apply_superoperator_density_batch`.  Like the unitary twin this
        is a default chaining implementation meant to be inherited (and
        overridable as one fused on-device kernel).
        """
        for operator in getattr(operators, "operators", operators):
            if operator.kind == "unitary":
                rhos = self.apply_gate_density_batch(rhos, operator.matrix,
                                                     operator.qubits)
            else:
                rhos = self.apply_superoperator_density_batch(
                    rhos, operator.matrix, operator.qubits)
        return rhos

    def observable_expectation_density_batch(self, rhos: np.ndarray,
                                             observable: np.ndarray
                                             ) -> np.ndarray:
        """Row-wise Hilbert-Schmidt expectation ``Re <O, rho_b>``; ``(batch,)``.

        ``<O, rho> = Tr(O^dagger rho) = vec(O)^dagger vec(rho)``: one batched
        matmul of the flattened density batch against a dense observable --
        the execution form of the compiler's Heisenberg-picture suffix replay
        (the observable being ``C^dagger(M)`` for a compiled channel ``C`` and
        projector ``M``).
        """
        rhos = np.asarray(rhos, dtype=self.dtype)
        observable = np.asarray(observable, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        if observable.shape != rhos.shape[1:]:
            raise ValueError("observable shape does not match the density batch")
        flat = rhos.reshape(rhos.shape[0], -1)
        return np.real(flat @ observable.conj().reshape(-1))

    # ------------------------------------------------- member-stacked programs
    def _validated_member_stack(self, stack: np.ndarray,
                                ndim: int) -> np.ndarray:
        stack = np.asarray(stack, dtype=self.dtype)
        if stack.ndim != ndim:
            raise ValueError(
                f"a member stack must be {ndim}-D with a leading member axis; "
                f"got shape {stack.shape}"
            )
        return stack

    def apply_compiled_unitary_member_batch(self, states: np.ndarray,
                                            unitaries: np.ndarray) -> np.ndarray:
        """Apply per-member fused unitaries to a stacked state batch.

        ``states`` is ``(members, batch, dim)`` -- one state batch per ensemble
        member -- and ``unitaries`` is the compiler's member-stacked
        ``(members, dim, dim)`` parameter stack
        (:meth:`repro.quantum.compiler.CircuitCompiler.member_stacked_unitary`).
        Row ``(m, b)`` of the result is ``U_m |psi_{m,b}>``: the whole
        ensemble sweep step in one dispatch.  The default chains
        :meth:`apply_unitary_batch` per member so every backend inherits the
        primitive; array backends override with one batched contraction.
        """
        states = self._validated_member_stack(states, 3)
        unitaries = self._validated_member_stack(unitaries, 3)
        if (unitaries.shape[0] != states.shape[0]
                or unitaries.shape[1:] != (states.shape[2], states.shape[2])):
            raise ValueError("unitary stack does not match the state stack")
        return np.stack([self.apply_unitary_batch(states[m], unitaries[m])
                         for m in range(states.shape[0])])

    def apply_compiled_superoperator_member_batch(self, rhos: np.ndarray,
                                                  program) -> np.ndarray:
        """Run a member-stacked channel program over a stacked density batch.

        ``rhos`` is ``(members, batch, d, d)`` and ``program`` a
        :class:`repro.quantum.compiler.MemberStackedProgram` (or any iterable
        of member-stacked operators): the structure is shared, member ``m``'s
        parameters live in ``operator.matrices[m]``.  The default dispatches
        each member's slice through the exact single-member kernels
        (:meth:`apply_gate_density_batch` /
        :meth:`apply_superoperator_density_batch`), which keeps the results
        bitwise identical to a serial per-member replay; on-device backends
        can override with one cross-member batched kernel per operator.
        """
        rhos = self._validated_member_stack(rhos, 4)
        if rhos.shape[2] != rhos.shape[3]:
            raise ValueError("a stacked density batch must be (members, "
                             "batch, d, d)")
        members = rhos.shape[0]
        operators = tuple(getattr(program, "operators", program))
        for operator in operators:
            if operator.matrices.shape[0] != members:
                raise ValueError("operator stack does not match the member "
                                 "count of the density stack")
        results = []
        for m in range(members):
            rho_m = rhos[m]
            for operator in operators:
                matrix = operator.matrices[m]
                if operator.kind == "unitary":
                    rho_m = self.apply_gate_density_batch(rho_m, matrix,
                                                          operator.qubits)
                else:
                    rho_m = self.apply_superoperator_density_batch(
                        rho_m, matrix, operator.qubits)
            results.append(rho_m)
        return np.stack(results)

    def observable_expectation_density_member_batch(self, rhos: np.ndarray,
                                                    observables: np.ndarray
                                                    ) -> np.ndarray:
        """Member-stacked Hilbert-Schmidt expectations; ``(members, batch)``.

        ``rhos`` is ``(members, batch, d, d)`` and ``observables`` the
        compiler's ``(members, d, d)`` stacked Heisenberg observables: entry
        ``(m, b)`` is ``Re <O_m, rho_{m,b}>``, i.e. one whole ensemble level
        step against the stacked density checkpoints.  The default chains
        :meth:`observable_expectation_density_batch` per member.
        """
        rhos = self._validated_member_stack(rhos, 4)
        observables = self._validated_member_stack(observables, 3)
        if (observables.shape[0] != rhos.shape[0]
                or observables.shape[1:] != rhos.shape[2:]):
            raise ValueError("observable stack does not match the density "
                             "stack")
        return np.stack([
            self.observable_expectation_density_batch(rhos[m], observables[m])
            for m in range(rhos.shape[0])
        ])

    def reset_qubit_density_batch(self, rhos: np.ndarray,
                                  qubit: int) -> np.ndarray:
        """Non-selectively reset one qubit of every density matrix to |0>.

        Default implementation routes through
        :meth:`apply_superoperator_density_batch` with the reset channel's
        superoperator (Kraus operators ``|0><0|`` and ``|0><1|``); backends can
        override with a direct partial-trace kernel.
        """
        zero_zero = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=self.dtype)
        zero_one = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=self.dtype)
        superop = (np.kron(zero_zero, zero_zero.conj())
                   + np.kron(zero_one, zero_one.conj()))
        return self.apply_superoperator_density_batch(rhos, superop, [qubit])

    def compression_overlap_levels(self, states: np.ndarray,
                                   levels: Sequence[int]) -> np.ndarray:
        """Autoencoder survival overlaps for several compression levels at once.

        For ``|phi_i>`` rows of ``states`` and each level ``k`` in ``levels``,
        computes ``sum_s |<phi_i[:, 0], phi_i[:, s]>|^2`` over the ``2^k`` reset
        patterns ``s`` (little-endian low qubits) -- the quantity the analytic
        SWAP-test reduction needs.  Returns shape ``(len(levels), batch)``.
        Level 0 yields 1 for normalized states.  ``|phi>`` is computed once by
        the caller, so a whole level sweep shares one encoder application.
        """
        states = self.as_states(states)
        batch, dim = states.shape
        overlaps = np.empty((len(levels), batch))
        for position, level in enumerate(levels):
            if level == 0:
                overlaps[position] = np.ones(batch)
                continue
            reset_dim = 2 ** int(level)
            if reset_dim > dim:
                raise ValueError(f"compression level {level} exceeds the register")
            kept_dim = dim // reset_dim
            # Little-endian: the reset qubits are the low-order bits, i.e. the
            # fastest-varying axis after reshaping.
            tensor = states.reshape(-1, kept_dim, reset_dim)
            reference = tensor[:, :, 0]
            inner = np.einsum("nk,nks->ns", reference.conj(), tensor)
            overlaps[position] = np.sum(np.abs(inner) ** 2, axis=1)
        return overlaps

    # ----------------------------------------------------------------- helpers
    def unitary_from_instructions(
            self, instructions: Sequence[Tuple[np.ndarray, Sequence[int]]],
            num_qubits: int) -> np.ndarray:
        """Dense unitary of a gate sequence, built through the batched kernel.

        The identity's rows are treated as a batch of basis states and pushed
        through every ``(gate, qubits)`` pair at once; row ``i`` of the batch
        ends as ``U |i>``, so the stacked result is ``U^T``.
        """
        dim = 2 ** num_qubits
        states = np.eye(dim, dtype=self.dtype)
        for gate, qubits in instructions:
            states = self.apply_gate_batch(states, gate, qubits)
        return states.T.copy()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"




class NumpyBackend(SimulationBackend):
    """Reference implementation: one ``np.einsum`` contraction per primitive."""

    name = "numpy"

    # ------------------------------------------------------------ statevectors
    def zero_states(self, batch_size: int, num_qubits: int) -> np.ndarray:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        states = np.zeros((batch_size, 2 ** num_qubits), dtype=self.dtype)
        states[:, 0] = 1.0
        return states

    def as_states(self, amplitudes: np.ndarray) -> np.ndarray:
        states = np.asarray(amplitudes, dtype=self.dtype)
        if states.ndim != 2:
            raise ValueError("a state batch must be 2-D (batch, 2**n)")
        return states

    def _num_qubits(self, dim: int) -> int:
        num_qubits = int(np.log2(dim)) if dim else 0
        if 2 ** num_qubits != dim:
            raise ValueError(f"state dimension {dim} is not a power of two")
        return num_qubits

    def apply_gate_batch(self, states: np.ndarray, gate: np.ndarray,
                         qubits: Sequence[int]) -> np.ndarray:
        states = self.as_states(states)
        batch, dim = states.shape
        num_qubits = self._num_qubits(dim)
        qubits = list(qubits)
        k = len(qubits)
        gate = np.asarray(gate, dtype=self.dtype)
        if gate.shape != (2 ** k, 2 ** k):
            raise ValueError(
                f"gate shape {gate.shape} does not match {k} target qubits"
            )
        tensor = states.reshape((batch,) + (2,) * num_qubits)
        # The shared tensordot kernel carries any axes outside the qubit block
        # through untouched, so offsetting by one turns the leading axis into a
        # batch axis and the whole batch contracts in one BLAS call.
        result = apply_unitary_to_tensor(tensor, gate, qubits, num_qubits,
                                         axis_offset=1)
        return np.ascontiguousarray(result).reshape(batch, dim)

    def apply_unitary_batch(self, states: np.ndarray,
                            unitary: np.ndarray) -> np.ndarray:
        states = self.as_states(states)
        unitary = np.asarray(unitary, dtype=self.dtype)
        if unitary.shape != (states.shape[1], states.shape[1]):
            raise ValueError("unitary shape does not match the state dimension")
        # Row i of the result is U |psi_i>.
        return states @ unitary.T

    def probability_one_batch(self, states: np.ndarray, qubit: int) -> np.ndarray:
        states = self.as_states(states)
        batch, dim = states.shape
        num_qubits = self._num_qubits(dim)
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        low = 2 ** qubit
        blocks = states.reshape(batch, dim // (2 * low), 2, low)
        return np.sum(np.abs(blocks[:, :, 1, :]) ** 2, axis=(1, 2))

    def collapse_qubit_batch(self, states: np.ndarray, qubit: int,
                             outcomes: np.ndarray,
                             reset_to_zero: bool = False) -> np.ndarray:
        states = self.as_states(states)
        batch, dim = states.shape
        num_qubits = self._num_qubits(dim)
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        outcomes = np.asarray(outcomes)
        if outcomes.shape != (batch,):
            raise ValueError("outcomes must hold one 0/1 value per state")
        low = 2 ** qubit
        blocks = states.reshape(batch, dim // (2 * low), 2, low).copy()
        ones = outcomes.astype(bool)
        blocks[~ones, :, 1, :] = 0.0
        if reset_to_zero:
            blocks[ones, :, 0, :] = blocks[ones, :, 1, :]
            blocks[ones, :, 1, :] = 0.0
        else:
            blocks[ones, :, 0, :] = 0.0
        collapsed = blocks.reshape(batch, dim)
        norms = np.linalg.norm(collapsed, axis=1, keepdims=True)
        if np.any(norms < 1e-15):
            raise RuntimeError("collapse produced a zero-norm state; the drawn "
                               "outcome had probability 0")
        return collapsed / norms

    def overlap_batch(self, states_a: np.ndarray,
                      states_b: np.ndarray) -> np.ndarray:
        states_a = self.as_states(states_a)
        states_b = self.as_states(states_b)
        if states_a.shape != states_b.shape:
            raise ValueError("state batches must have identical shapes")
        inner = np.einsum("bi,bi->b", states_a.conj(), states_b)
        return np.abs(inner) ** 2

    # --------------------------------------------------------- density matrices
    def density_from_states(self, states: np.ndarray) -> np.ndarray:
        states = self.as_states(states)
        return np.einsum("bi,bj->bij", states, states.conj())

    def apply_gate_density_batch(self, rhos: np.ndarray, gate: np.ndarray,
                                 qubits: Sequence[int]) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        batch, dim = rhos.shape[0], rhos.shape[1]
        num_qubits = self._num_qubits(dim)
        qubits = list(qubits)
        k = len(qubits)
        gate = np.asarray(gate, dtype=self.dtype)
        if gate.shape != (2 ** k, 2 ** k):
            raise ValueError("gate shape does not match the target qubits")
        tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
        # U on the row indices, conj(U) on the column indices; the leading axis
        # stays a batch axis in both contractions.
        tensor = apply_unitary_to_tensor(tensor, gate, qubits, num_qubits,
                                         axis_offset=1)
        tensor = apply_unitary_to_tensor(tensor, np.conj(gate), qubits,
                                         num_qubits,
                                         axis_offset=1 + num_qubits)
        return np.ascontiguousarray(tensor).reshape(batch, dim, dim)

    def evolve_density_batch(self, rhos: np.ndarray,
                             unitary: np.ndarray) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        unitary = np.asarray(unitary, dtype=self.dtype)
        if rhos.ndim != 3 or unitary.shape != rhos.shape[1:]:
            raise ValueError("unitary shape does not match the density batch")
        return unitary @ rhos @ unitary.conj().T

    def reset_low_qubits_density_batch(self, rhos: np.ndarray,
                                       num_reset: int) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        if num_reset == 0:
            return rhos.copy()
        batch, dim = rhos.shape[0], rhos.shape[1]
        num_qubits = self._num_qubits(dim)
        if not 0 <= num_reset <= num_qubits:
            raise ValueError("num_reset out of range")
        reset_dim = 2 ** num_reset
        kept_dim = dim // reset_dim
        # Little-endian: the reset qubits are the fastest-varying index block.
        blocks = rhos.reshape(batch, kept_dim, reset_dim, kept_dim, reset_dim)
        traced = np.einsum("bksls->bkl", blocks)
        result = np.zeros_like(blocks)
        result[:, :, 0, :, 0] = traced
        return result.reshape(batch, dim, dim)

    def expectation_batch(self, rhos: np.ndarray,
                          states: np.ndarray) -> np.ndarray:
        rhos = np.asarray(rhos, dtype=self.dtype)
        states = self.as_states(states)
        if rhos.ndim != 3 or rhos.shape[:2] != states.shape:
            raise ValueError("density batch does not match the state batch")
        values = np.einsum("bi,bij,bj->b", states.conj(), rhos, states)
        return np.real(values)

    def _validated_density_batch(self, rhos: np.ndarray) -> Tuple[np.ndarray, int]:
        rhos = np.asarray(rhos, dtype=self.dtype)
        if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2]:
            raise ValueError("a density batch must be (batch, d, d)")
        return rhos, self._num_qubits(rhos.shape[1])

    def _apply_matrices_to_axes(self, tensor: np.ndarray, matrices: np.ndarray,
                                target_axes: Sequence[int]) -> np.ndarray:
        """Contract ``matrices[b]`` with the ``target_axes`` of batch entry ``b``.

        ``target_axes`` are flattened most-significant-first into one index of
        size ``matrices.shape[-1]``; the contraction runs as one batched GEMM
        (``matmul``), which is substantially faster than ``einsum`` for the
        many-rows-times-tiny-matrix shapes this produces.
        """
        k = len(target_axes)
        ndim = tensor.ndim
        moved = np.moveaxis(tensor, target_axes, range(ndim - k, ndim))
        lead_shape = moved.shape[: ndim - k]
        local_dim = matrices.shape[-1]
        flat = moved.reshape(moved.shape[0], -1, local_dim)
        # out[b, r, i] = sum_j matrices[b, i, j] * flat[b, r, j]
        out = np.matmul(flat, np.swapaxes(matrices, -1, -2))
        out = out.reshape(lead_shape + (2,) * k)
        return np.moveaxis(out, range(ndim - k, ndim), target_axes)

    def _apply_gates_to_axes(self, tensor: np.ndarray, gates: np.ndarray,
                             qubits: Sequence[int], num_qubits: int,
                             axis_offset: int) -> np.ndarray:
        """Per-batch-entry gate application on one axes block of ``tensor``.

        Same index conventions as
        :func:`repro.quantum.statevector.apply_unitary_to_tensor` (the gate's
        row/column index treats the first listed qubit as the least-significant
        bit), but contracting ``gates[b]`` with batch entry ``b``.
        """
        state_axes = [axis_offset + num_qubits - 1 - q for q in reversed(qubits)]
        return self._apply_matrices_to_axes(tensor, gates, state_axes)

    def apply_gates_density_batch(self, rhos: np.ndarray, gates: np.ndarray,
                                  qubits: Sequence[int]) -> np.ndarray:
        rhos, num_qubits = self._validated_density_batch(rhos)
        batch, dim = rhos.shape[0], rhos.shape[1]
        qubits = list(qubits)
        k = len(qubits)
        gates = np.asarray(gates, dtype=self.dtype)
        if gates.shape != (batch, 2 ** k, 2 ** k):
            raise ValueError(
                f"per-sample gates must have shape (batch, 2^k, 2^k); got "
                f"{gates.shape} for {k} target qubits and batch {batch}"
            )
        tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
        tensor = self._apply_gates_to_axes(tensor, gates, qubits, num_qubits,
                                           axis_offset=1)
        tensor = self._apply_gates_to_axes(tensor, np.conj(gates), qubits,
                                           num_qubits,
                                           axis_offset=1 + num_qubits)
        return np.ascontiguousarray(tensor).reshape(batch, dim, dim)

    def apply_superoperator_density_batch(self, rhos: np.ndarray,
                                          superoperator: np.ndarray,
                                          qubits: Sequence[int]) -> np.ndarray:
        rhos, num_qubits = self._validated_density_batch(rhos)
        batch, dim = rhos.shape[0], rhos.shape[1]
        qubits = list(qubits)
        k = len(qubits)
        local_dim = 2 ** k
        superoperator = np.asarray(superoperator, dtype=self.dtype)
        if superoperator.shape != (local_dim ** 2, local_dim ** 2):
            raise ValueError("superoperator shape does not match the qubit count")
        tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
        # Combined (row, column) axes of the targeted qubits, most significant
        # first, offset by one for the leading batch axis -- the batched twin of
        # DensityMatrix.apply_superoperator.
        row_axes = [1 + num_qubits - 1 - q for q in reversed(qubits)]
        col_axes = [1 + 2 * num_qubits - 1 - q for q in reversed(qubits)]
        target_axes = row_axes + col_axes
        superop_tensor = superoperator.reshape((2,) * (4 * k))
        input_axes = list(range(2 * k, 4 * k))
        moved = np.tensordot(superop_tensor, tensor, axes=(input_axes, target_axes))
        # tensordot puts the channel's output axes first and the surviving axes
        # (batch first) after them; moving the outputs back also restores the
        # batch axis to the front.
        moved = np.moveaxis(moved, range(2 * k), target_axes)
        return np.ascontiguousarray(moved).reshape(batch, dim, dim)

    def apply_superoperators_density_batch(self, rhos: np.ndarray,
                                           superoperators: np.ndarray,
                                           qubits: Sequence[int]) -> np.ndarray:
        rhos, num_qubits = self._validated_density_batch(rhos)
        batch, dim = rhos.shape[0], rhos.shape[1]
        qubits = list(qubits)
        k = len(qubits)
        local_dim = 2 ** k
        superoperators = np.asarray(superoperators, dtype=self.dtype)
        if superoperators.shape != (batch, local_dim ** 2, local_dim ** 2):
            raise ValueError(
                "per-sample superoperators must have shape (batch, d^2, d^2)"
            )
        tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
        row_axes = [1 + num_qubits - 1 - q for q in reversed(qubits)]
        col_axes = [1 + 2 * num_qubits - 1 - q for q in reversed(qubits)]
        # Row block first, most-significant qubit first inside each block --
        # the same (row, column) flattening kraus_to_superoperator uses.
        tensor = self._apply_matrices_to_axes(tensor, superoperators,
                                              row_axes + col_axes)
        return np.ascontiguousarray(tensor).reshape(batch, dim, dim)

    def reset_qubit_density_batch(self, rhos: np.ndarray,
                                  qubit: int) -> np.ndarray:
        rhos, num_qubits = self._validated_density_batch(rhos)
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        batch, dim = rhos.shape[0], rhos.shape[1]
        low = 2 ** qubit
        high = dim // (2 * low)
        blocks = rhos.reshape(batch, high, 2, low, high, 2, low)
        result = np.zeros_like(blocks)
        # Partial trace over the reset qubit, re-embedded in its |0> subspace.
        result[:, :, 0, :, :, 0, :] = (blocks[:, :, 0, :, :, 0, :]
                                       + blocks[:, :, 1, :, :, 1, :])
        return result.reshape(batch, dim, dim)

    def probability_one_density_batch(self, rhos: np.ndarray,
                                      qubit: int) -> np.ndarray:
        rhos, num_qubits = self._validated_density_batch(rhos)
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        batch, dim = rhos.shape[0], rhos.shape[1]
        low = 2 ** qubit
        diagonal = np.real(np.einsum("bii->bi", rhos))
        blocks = diagonal.reshape(batch, dim // (2 * low), 2, low)
        return np.sum(blocks[:, :, 1, :], axis=(1, 2))

    # ------------------------------------------------- member-stacked programs
    # The batched overrides below are chosen so each member's slice runs the
    # SAME per-slice BLAS call as the single-member kernel: ``np.matmul`` on
    # stacked operands dispatches one GEMM/GEMV per leading-axis entry, so the
    # fused ensemble dispatch stays bitwise identical to the serial per-member
    # loop (asserted by the executor determinism suite).
    def apply_compiled_unitary_member_batch(self, states: np.ndarray,
                                            unitaries: np.ndarray) -> np.ndarray:
        states = self._validated_member_stack(states, 3)
        unitaries = self._validated_member_stack(unitaries, 3)
        if (unitaries.shape[0] != states.shape[0]
                or unitaries.shape[1:] != (states.shape[2], states.shape[2])):
            raise ValueError("unitary stack does not match the state stack")
        # Row (m, b) of the result is U_m |psi_{m,b}>.
        return np.matmul(states, np.swapaxes(unitaries, -1, -2))

    def observable_expectation_density_member_batch(self, rhos: np.ndarray,
                                                    observables: np.ndarray
                                                    ) -> np.ndarray:
        rhos = self._validated_member_stack(rhos, 4)
        observables = self._validated_member_stack(observables, 3)
        if (observables.shape[0] != rhos.shape[0]
                or observables.shape[1:] != rhos.shape[2:]):
            raise ValueError("observable stack does not match the density "
                             "stack")
        members, batch = rhos.shape[0], rhos.shape[1]
        flat = rhos.reshape(members, batch, -1)
        vecs = observables.conj().reshape(members, -1, 1)
        return np.real(np.matmul(flat, vecs)[..., 0])


class NumpyFloat32Backend(NumpyBackend):
    """Single-precision variant of the reference backend.

    States and density matrices are held in ``complex64`` and every kernel runs
    in single precision, validating the backend plug point beyond the reference
    implementation (and halving memory traffic).  Probability-valued reductions
    are cast back to ``float64`` so downstream scoring code sees the usual
    result dtype; accuracy is limited to roughly ``1e-6`` on the small registers
    Quorum uses, which the cross-validation tests assert explicitly.
    """

    name = "numpy-float32"
    dtype: np.dtype = np.dtype(np.complex64)

    def probability_one_batch(self, states: np.ndarray, qubit: int) -> np.ndarray:
        return super().probability_one_batch(states, qubit).astype(np.float64)

    def overlap_batch(self, states_a: np.ndarray,
                      states_b: np.ndarray) -> np.ndarray:
        return super().overlap_batch(states_a, states_b).astype(np.float64)

    def expectation_batch(self, rhos: np.ndarray,
                          states: np.ndarray) -> np.ndarray:
        return super().expectation_batch(rhos, states).astype(np.float64)

    def probability_one_density_batch(self, rhos: np.ndarray,
                                      qubit: int) -> np.ndarray:
        return super().probability_one_density_batch(rhos, qubit).astype(np.float64)

    def observable_expectation_density_batch(self, rhos: np.ndarray,
                                             observable: np.ndarray
                                             ) -> np.ndarray:
        return super().observable_expectation_density_batch(
            rhos, observable).astype(np.float64)

    def observable_expectation_density_member_batch(self, rhos: np.ndarray,
                                                    observables: np.ndarray
                                                    ) -> np.ndarray:
        return super().observable_expectation_density_member_batch(
            rhos, observables).astype(np.float64)


_REGISTRY: Dict[str, Callable[[], SimulationBackend]] = {}


def register_simulation_backend(name: str,
                                factory: Callable[[], SimulationBackend]) -> None:
    """Register a backend factory under ``name`` (lowercased)."""
    _REGISTRY[name.lower()] = factory


def available_simulation_backends() -> Tuple[str, ...]:
    """Names of all registered simulation backends."""
    return tuple(sorted(_REGISTRY))


def get_simulation_backend(
        backend: Optional[Union[str, SimulationBackend]] = None
) -> SimulationBackend:
    """Resolve a backend name or instance; ``None`` means the numpy default."""
    if backend is None:
        backend = "numpy"
    if isinstance(backend, SimulationBackend):
        return backend
    key = str(backend).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"available: {', '.join(available_simulation_backends())}"
        )
    return _REGISTRY[key]()


register_simulation_backend("numpy", NumpyBackend)
register_simulation_backend("numpy-float32", NumpyFloat32Backend)
