"""Small library of standard circuits.

These are not used by the Quorum algorithm itself; they exist to exercise and
validate the simulator/transpiler substrate (tests, benchmarks, examples) with
well-understood circuits: GHZ and W states, the quantum Fourier transform, and
reproducible random circuits.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.quantum.circuit import QuantumCircuit

__all__ = ["bell_pair", "ghz_circuit", "w_state_circuit", "qft_circuit",
           "random_circuit"]


def bell_pair() -> QuantumCircuit:
    """The two-qubit Bell state |00> + |11> (unnormalized notation)."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0).cx(0, 1)
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """The ``num_qubits``-qubit GHZ state |0...0> + |1...1>."""
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def w_state_circuit(num_qubits: int) -> QuantumCircuit:
    """The ``num_qubits``-qubit W state (equal superposition of weight-1 strings).

    Built with the standard cascade of controlled rotations: qubit 0 starts in
    |1>, and the excitation is coherently shared down the register.
    """
    if num_qubits < 2:
        raise ValueError("a W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    circuit.x(0)
    for qubit in range(num_qubits - 1):
        remaining = num_qubits - qubit
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        # Move a (1/remaining) share of the excitation from `qubit` to `qubit+1`.
        circuit.cry(theta, qubit, qubit + 1)
        circuit.cx(qubit + 1, qubit)
    return circuit


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """The quantum Fourier transform on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise ValueError("the QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for control in reversed(range(target)):
            angle = math.pi / (2 ** (target - control))
            circuit.cp(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def random_circuit(num_qubits: int, depth: int,
                   seed: Optional[int] = None) -> QuantumCircuit:
    """A reproducible random circuit of single-qubit rotations and CX gates.

    Each layer applies a random rotation (RX/RY/RZ with a uniform angle) to every
    qubit followed by CX gates on a random pairing of neighbouring qubits; useful
    as a stress test for simulators and the transpiler.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if depth < 1:
        raise ValueError("depth must be positive")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    rotations = ("rx", "ry", "rz")
    for _ in range(depth):
        for qubit in range(num_qubits):
            gate = rotations[int(rng.integers(len(rotations)))]
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            getattr(circuit, gate)(angle, qubit)
        if num_qubits >= 2:
            offset = int(rng.integers(2))
            for control in range(offset, num_qubits - 1, 2):
                circuit.cx(control, control + 1)
    return circuit
