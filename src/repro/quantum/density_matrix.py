"""Mixed-state representation with exact non-unitary operations.

The density-matrix backend is what makes the Quorum autoencoder's *partial reset*
bottleneck exactly simulable: resetting a subset of entangled qubits produces a
mixed state, which a single statevector cannot represent.  It is also the natural
place to apply noise channels (depolarizing, thermal relaxation, readout error).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.quantum.operators import partial_trace, purity
from repro.quantum.statevector import (
    Statevector,
    apply_unitary_to_tensor,
    bitstring_from_index,
)

__all__ = ["DensityMatrix", "kraus_to_superoperator"]


def kraus_to_superoperator(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator matrix ``S = sum_k K (x) conj(K)`` of a Kraus channel.

    The result acts on the density matrix's combined (row, column) index pair:
    with ``rho`` flattened row-major, ``vec(rho') = S @ vec(rho)``.
    """
    first = np.asarray(kraus_operators[0], dtype=complex)
    dim = first.shape[0]
    superop = np.zeros((dim * dim, dim * dim), dtype=complex)
    for kraus in kraus_operators:
        kraus = np.asarray(kraus, dtype=complex)
        superop += np.kron(kraus, np.conj(kraus))
    return superop


class DensityMatrix:
    """A density matrix over ``num_qubits`` qubits in little-endian ordering."""

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None):
        matrix = np.asarray(data, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("density matrix must be square")
        size = matrix.shape[0]
        inferred = int(np.log2(size)) if size else 0
        if 2 ** inferred != size:
            raise ValueError(f"density matrix dimension {size} is not a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise ValueError("num_qubits inconsistent with matrix dimension")
        self.num_qubits = inferred
        self.data = matrix

    # ------------------------------------------------------------- constructors
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """|0...0><0...0|."""
        dim = 2 ** num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        matrix[0, 0] = 1.0
        return cls(matrix)

    @classmethod
    def from_statevector(cls, statevector: Statevector) -> "DensityMatrix":
        """Pure-state density matrix from a :class:`Statevector`."""
        return cls(statevector.to_density_matrix())

    # ---------------------------------------------------------------- evolution
    def copy(self) -> "DensityMatrix":
        """Deep copy."""
        return DensityMatrix(self.data.copy())

    def _tensor(self) -> np.ndarray:
        return self.data.reshape((2,) * (2 * self.num_qubits))

    def evolve_gate(self, gate: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a unitary gate: rho -> U rho U^dagger."""
        tensor = self._tensor()
        tensor = apply_unitary_to_tensor(tensor, gate, qubits, self.num_qubits,
                                         axis_offset=0)
        tensor = apply_unitary_to_tensor(tensor, np.conj(gate), qubits,
                                         self.num_qubits,
                                         axis_offset=self.num_qubits)
        dim = 2 ** self.num_qubits
        return DensityMatrix(tensor.reshape(dim, dim))

    def apply_kraus(self, kraus_operators: Sequence[np.ndarray],
                    qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a local channel given by Kraus operators acting on ``qubits``.

        Channels with more than two Kraus operators are applied through their
        superoperator form (one tensor contraction) instead of one contraction
        pair per Kraus operator, which is substantially faster for e.g. two-qubit
        depolarizing noise (16 Kraus operators).
        """
        if len(kraus_operators) > 2:
            superop = kraus_to_superoperator(kraus_operators)
            return self.apply_superoperator(superop, qubits)
        tensor = self._tensor()
        dim = 2 ** self.num_qubits
        accumulated = np.zeros((dim, dim), dtype=complex)
        for kraus in kraus_operators:
            kraus = np.asarray(kraus, dtype=complex)
            branch = apply_unitary_to_tensor(tensor, kraus, qubits, self.num_qubits,
                                             axis_offset=0)
            branch = apply_unitary_to_tensor(branch, np.conj(kraus), qubits,
                                             self.num_qubits,
                                             axis_offset=self.num_qubits)
            accumulated += branch.reshape(dim, dim)
        return DensityMatrix(accumulated)

    def apply_superoperator(self, superoperator: np.ndarray,
                            qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a channel in superoperator form to ``qubits``.

        ``superoperator`` must be the ``d^2 x d^2`` matrix returned by
        :func:`kraus_to_superoperator`, acting on the column-stacked (row index,
        column index) pair of the local density matrix.
        """
        qubits = list(qubits)
        k = len(qubits)
        local_dim = 2 ** k
        if superoperator.shape != (local_dim ** 2, local_dim ** 2):
            raise ValueError("superoperator shape does not match the qubit count")
        num_qubits = self.num_qubits
        tensor = self._tensor()
        # Combined (row, column) axes of the targeted qubits, most significant
        # first to match the reshape convention used by kraus_to_superoperator.
        row_axes = [num_qubits - 1 - q for q in reversed(qubits)]
        col_axes = [2 * num_qubits - 1 - q for q in reversed(qubits)]
        target_axes = row_axes + col_axes
        superop_tensor = superoperator.reshape((2,) * (4 * k))
        input_axes = list(range(2 * k, 4 * k))
        moved = np.tensordot(superop_tensor, tensor, axes=(input_axes, target_axes))
        moved = np.moveaxis(moved, range(2 * k), target_axes)
        dim = 2 ** num_qubits
        return DensityMatrix(moved.reshape(dim, dim))

    def reset_qubit(self, qubit: int) -> "DensityMatrix":
        """Non-selectively reset ``qubit`` to |0>.

        Implemented as the channel with Kraus operators ``|0><0|`` and ``|0><1|``,
        which is exactly what a measure-and-conditionally-flip reset realizes when
        the outcome is discarded.
        """
        k0 = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        k1 = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=complex)
        return self.apply_kraus([k0, k1], [qubit])

    # -------------------------------------------------------------- measurement
    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Computational-basis probabilities, optionally marginalized to ``qubits``."""
        diagonal = np.real(np.diag(self.data)).copy()
        diagonal[diagonal < 0.0] = 0.0
        total = diagonal.sum()
        if total > 0:
            diagonal = diagonal / total
        if qubits is None:
            return diagonal
        pure_like = Statevector(np.sqrt(diagonal))
        return pure_like.probabilities(qubits)

    def probability_of_outcome(self, qubit: int, outcome: int) -> float:
        """Probability of measuring ``qubit`` in ``outcome``."""
        probs = self.probabilities([qubit])
        return float(probs[outcome])

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit``."""
        probs = self.probabilities([qubit])
        return float(probs[0] - probs[1])

    def sample_counts(self, shots: int, rng: np.random.Generator,
                      qubits: Optional[Sequence[int]] = None) -> Dict[str, int]:
        """Sample measurement outcomes from the diagonal of the density matrix."""
        probs = self.probabilities(qubits)
        probs = probs / probs.sum()
        num_bits = self.num_qubits if qubits is None else len(list(qubits))
        outcomes = rng.multinomial(shots, probs)
        counts: Dict[str, int] = {}
        for index, count in enumerate(outcomes):
            if count:
                counts[bitstring_from_index(index, num_bits)] = int(count)
        return counts

    # --------------------------------------------------------------- reductions
    def reduced(self, keep: Sequence[int]) -> "DensityMatrix":
        """Partial trace keeping only ``keep`` (in the given significance order)."""
        return DensityMatrix(partial_trace(self.data, keep, self.num_qubits))

    def purity(self) -> float:
        """Tr(rho^2)."""
        return purity(self.data)

    def trace(self) -> float:
        """Real part of the trace (should be 1 for physical states)."""
        return float(np.real(np.trace(self.data)))

    def overlap(self, other: "DensityMatrix") -> float:
        """Hilbert-Schmidt overlap Tr(rho sigma).

        For a pure ``other`` this equals <psi|rho|psi>, which is exactly the
        quantity estimated by a SWAP test between the two registers.
        """
        if other.num_qubits != self.num_qubits:
            raise ValueError("density matrices have different qubit counts")
        return float(np.real(np.trace(self.data @ other.data)))

    def __repr__(self) -> str:
        return f"DensityMatrix(num_qubits={self.num_qubits})"
