"""Operator utilities: partial trace, fidelity, purity, and Kraus application."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import linalg as sla

__all__ = [
    "partial_trace",
    "purity",
    "state_fidelity",
    "process_is_trace_preserving",
    "apply_kraus",
    "is_density_matrix",
]


def partial_trace(rho: np.ndarray, keep: Sequence[int], num_qubits: int) -> np.ndarray:
    """Trace out every qubit not in ``keep``.

    Parameters
    ----------
    rho:
        ``2^n x 2^n`` density matrix in little-endian ordering.
    keep:
        Qubits to retain, in the significance order desired for the output (the
        first listed qubit becomes the least-significant bit of the reduced matrix).
    num_qubits:
        Total number of qubits ``n``.
    """
    keep = list(keep)
    dim_keep = 2 ** len(keep)
    tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * num_qubits))
    # Axis layout: row axes 0..n-1 (axis n-1-q for qubit q), column axes n..2n-1.
    traced = tensor
    removed = 0
    for qubit in sorted(set(range(num_qubits)) - set(keep), reverse=True):
        remaining = num_qubits - removed
        # Tracing in descending qubit order means every previously removed qubit
        # occupied an axis *before* this one, shifting it left by ``removed``.
        row_axis = (num_qubits - 1 - qubit) - removed
        col_axis = row_axis + remaining
        traced = np.trace(traced, axis1=row_axis, axis2=col_axis)
        removed += 1
    remaining_qubits = [q for q in range(num_qubits) if q in keep]
    reduced = traced.reshape(dim_keep, dim_keep)
    # ``remaining_qubits`` is ascending; reorder to match the requested ``keep``.
    if remaining_qubits != keep:
        perm = _qubit_permutation_matrix(remaining_qubits, keep)
        reduced = perm @ reduced @ perm.conj().T
    return reduced


def _qubit_permutation_matrix(current: Sequence[int], target: Sequence[int]) -> np.ndarray:
    """Permutation matrix mapping amplitudes ordered by ``current`` to ``target``."""
    k = len(current)
    dim = 2 ** k
    perm = np.zeros((dim, dim), dtype=complex)
    position_of = {qubit: pos for pos, qubit in enumerate(current)}
    for index in range(dim):
        bits = [(index >> pos) & 1 for pos in range(k)]  # bit of current[pos]
        new_index = 0
        for new_pos, qubit in enumerate(target):
            new_index |= bits[position_of[qubit]] << new_pos
        perm[new_index, index] = 1.0
    return perm


def purity(rho: np.ndarray) -> float:
    """Tr(rho^2); 1 for pure states, 1/d for the maximally mixed state."""
    rho = np.asarray(rho, dtype=complex)
    return float(np.real(np.trace(rho @ rho)))


def state_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2."""
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    sqrt_rho = sla.sqrtm(rho)
    inner = sla.sqrtm(sqrt_rho @ sigma @ sqrt_rho)
    value = float(np.real(np.trace(inner)) ** 2)
    return min(max(value, 0.0), 1.0)


def apply_kraus(rho: np.ndarray, kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Apply a channel given by Kraus operators to a density matrix."""
    rho = np.asarray(rho, dtype=complex)
    out = np.zeros_like(rho)
    for kraus in kraus_operators:
        out += kraus @ rho @ kraus.conj().T
    return out


def process_is_trace_preserving(kraus_operators: Sequence[np.ndarray],
                                atol: float = 1e-9) -> bool:
    """Check the completeness relation sum_k K_k^dagger K_k = I."""
    first = np.asarray(kraus_operators[0], dtype=complex)
    total = np.zeros_like(first)
    for kraus in kraus_operators:
        kraus = np.asarray(kraus, dtype=complex)
        total = total + kraus.conj().T @ kraus
    return bool(np.allclose(total, np.eye(total.shape[0]), atol=atol))


def is_density_matrix(rho: np.ndarray, atol: float = 1e-8) -> bool:
    """True when ``rho`` is Hermitian, unit trace, and positive semidefinite."""
    rho = np.asarray(rho, dtype=complex)
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    if abs(np.trace(rho).real - 1.0) > atol:
        return False
    eigenvalues = np.linalg.eigvalsh(rho)
    return bool(eigenvalues.min() >= -atol)
