"""Quantum circuit intermediate representation.

The :class:`QuantumCircuit` here intentionally mirrors the small slice of Qiskit's
``QuantumCircuit`` API that the Quorum artifact relies on: standard gates, arbitrary
state initialization, qubit reset (used for the autoencoder's information
bottleneck), measurement into classical bits, barriers, composition, and inversion.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum import gates as gate_lib

__all__ = ["Instruction", "QuantumCircuit"]

#: Instruction names that are not plain unitary gates.
_NON_UNITARY_NAMES = {"reset", "measure", "barrier", "initialize"}


@dataclass(frozen=True)
class Instruction:
    """A single operation in a circuit.

    Attributes
    ----------
    name:
        Lowercase operation name; either a standard gate name, ``"unitary"`` for an
        explicit matrix, or one of ``reset``, ``measure``, ``barrier``,
        ``initialize``.
    qubits:
        Target qubits, in little-endian significance order (first listed qubit is
        the least-significant index of the gate matrix).
    params:
        Gate parameters (rotation angles, Euler angles, ...).
    clbits:
        Classical bits written by ``measure`` instructions.
    matrix:
        Explicit unitary for ``"unitary"`` instructions.
    state:
        Target statevector for ``"initialize"`` instructions (normalized amplitudes
        over the listed qubits).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    clbits: Tuple[int, ...] = ()
    matrix: Optional[np.ndarray] = field(default=None, compare=False)
    state: Optional[np.ndarray] = field(default=None, compare=False)

    @property
    def is_unitary(self) -> bool:
        """True when the instruction is a plain unitary gate."""
        return self.name not in _NON_UNITARY_NAMES

    def matrix_or_standard(self) -> np.ndarray:
        """Return the unitary matrix for this instruction.

        Raises
        ------
        ValueError
            If the instruction is not unitary.
        """
        if not self.is_unitary:
            raise ValueError(f"instruction '{self.name}' has no unitary matrix")
        if self.name == "unitary":
            if self.matrix is None:
                raise ValueError("unitary instruction is missing its matrix")
            return self.matrix
        return gate_lib.standard_gate_matrix(self.name, self.params)

    def inverse(self) -> "Instruction":
        """Return the inverse instruction.

        Raises
        ------
        ValueError
            If the instruction is non-unitary (reset/measure cannot be inverted).
        """
        if not self.is_unitary:
            raise ValueError(f"cannot invert non-unitary instruction '{self.name}'")
        if self.name == "unitary":
            return Instruction(
                name="unitary",
                qubits=self.qubits,
                matrix=self.matrix_or_standard().conj().T.copy(),
            )
        inverse_names = {
            "s": "sdg",
            "sdg": "s",
            "t": "tdg",
            "tdg": "t",
            "sx": "sxdg",
            "sxdg": "sx",
        }
        if self.name in inverse_names:
            return Instruction(name=inverse_names[self.name], qubits=self.qubits)
        if self.name in {"id", "x", "y", "z", "h", "cx", "cz", "cy", "ch", "swap",
                         "ccx", "cswap"}:
            return Instruction(name=self.name, qubits=self.qubits)
        if self.name in {"rx", "ry", "rz", "p", "crx", "cry", "crz", "cp", "rxx",
                         "rzz"}:
            params = tuple(-value for value in self.params)
            return Instruction(name=self.name, qubits=self.qubits, params=params)
        if self.name == "u":
            theta, phi, lam = self.params
            return Instruction(
                name="u", qubits=self.qubits, params=(-theta, -lam, -phi)
            )
        return Instruction(
            name="unitary",
            qubits=self.qubits,
            matrix=self.matrix_or_standard().conj().T.copy(),
        )


class QuantumCircuit:
    """An ordered list of instructions over ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits in the circuit.
    num_clbits:
        Number of classical bits.  Defaults to ``num_qubits`` so that a final
        ``measure_all`` always has somewhere to write.
    name:
        Optional human-readable name.
    """

    def __init__(self, num_qubits: int, num_clbits: Optional[int] = None,
                 name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits) if num_clbits is not None else int(num_qubits)
        self.name = name
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------ helpers
    def _check_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise IndexError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in {qubits}")
        return qubits

    def _check_clbits(self, clbits: Sequence[int]) -> Tuple[int, ...]:
        clbits = tuple(int(c) for c in clbits)
        for clbit in clbits:
            if not 0 <= clbit < self.num_clbits:
                raise IndexError(
                    f"clbit {clbit} out of range for {self.num_clbits} classical bits"
                )
        return clbits

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built :class:`Instruction` (qubits are validated)."""
        self._check_qubits(instruction.qubits)
        if instruction.clbits:
            self._check_clbits(instruction.clbits)
        self.instructions.append(instruction)
        return self

    def _add_gate(self, name: str, qubits: Sequence[int],
                  params: Sequence[float] = ()) -> "QuantumCircuit":
        expected = gate_lib.GATE_NUM_QUBITS[name]
        qubits = self._check_qubits(qubits)
        if len(qubits) != expected:
            raise ValueError(
                f"gate '{name}' acts on {expected} qubits, got {len(qubits)}"
            )
        instruction = Instruction(
            name=name, qubits=qubits, params=tuple(float(p) for p in params)
        )
        self.instructions.append(instruction)
        return self

    # ------------------------------------------------------------- single qubit
    def id(self, qubit: int) -> "QuantumCircuit":
        """Identity gate (useful as an explicit no-op placeholder)."""
        return self._add_gate("id", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self._add_gate("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self._add_gate("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self._add_gate("z", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self._add_gate("h", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        """S (phase) gate."""
        return self._add_gate("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """S-dagger gate."""
        return self._add_gate("sdg", [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self._add_gate("t", [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """T-dagger gate."""
        return self._add_gate("tdg", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Square-root-of-X gate."""
        return self._add_gate("sx", [qubit])

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse square-root-of-X gate."""
        return self._add_gate("sxdg", [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """X-axis rotation by ``theta``."""
        return self._add_gate("rx", [qubit], [theta])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Y-axis rotation by ``theta``."""
        return self._add_gate("ry", [qubit], [theta])

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Z-axis rotation by ``theta``."""
        return self._add_gate("rz", [qubit], [theta])

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate diag(1, e^{i lambda})."""
        return self._add_gate("p", [qubit], [lam])

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Generic single-qubit gate with Euler angles."""
        return self._add_gate("u", [qubit], [theta, phi, lam])

    # --------------------------------------------------------------- multi qubit
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT) gate."""
        return self._add_gate("cx", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z gate."""
        return self._add_gate("cz", [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Y gate."""
        return self._add_gate("cy", [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Hadamard gate."""
        return self._add_gate("ch", [control, target])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled X-rotation."""
        return self._add_gate("crx", [control, target], [theta])

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled Y-rotation."""
        return self._add_gate("cry", [control, target], [theta])

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled Z-rotation."""
        return self._add_gate("crz", [control, target], [theta])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase gate."""
        return self._add_gate("cp", [control, target], [lam])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self._add_gate("swap", [qubit_a, qubit_b])

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Two-qubit XX rotation."""
        return self._add_gate("rxx", [qubit_a, qubit_b], [theta])

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Two-qubit ZZ rotation."""
        return self._add_gate("rzz", [qubit_a, qubit_b], [theta])

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Toffoli gate."""
        return self._add_gate("ccx", [control_a, control_b, target])

    def cswap(self, control: int, target_a: int, target_b: int) -> "QuantumCircuit":
        """Fredkin (controlled-SWAP) gate, the workhorse of the SWAP test."""
        return self._add_gate("cswap", [control, target_a, target_b])

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> "QuantumCircuit":
        """Apply an explicit unitary matrix to ``qubits``."""
        qubits = self._check_qubits(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        dim = 2 ** len(qubits)
        if matrix.shape != (dim, dim):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {len(qubits)} qubits"
            )
        if not gate_lib.is_unitary(matrix):
            raise ValueError("matrix is not unitary")
        self.instructions.append(
            Instruction(name="unitary", qubits=qubits, matrix=matrix.copy())
        )
        return self

    # --------------------------------------------------------------- non-unitary
    def initialize(self, state: Sequence[complex],
                   qubits: Sequence[int]) -> "QuantumCircuit":
        """Prepare ``qubits`` (assumed to be in |0...0>) in the given statevector."""
        qubits = self._check_qubits(qubits)
        state = np.asarray(state, dtype=complex).ravel()
        dim = 2 ** len(qubits)
        if state.shape != (dim,):
            raise ValueError(
                f"statevector has {state.shape[0]} amplitudes, expected {dim}"
            )
        norm = float(np.linalg.norm(state))
        if norm < 1e-12:
            raise ValueError("cannot initialize to the zero vector")
        if abs(norm - 1.0) > 1e-8:
            raise ValueError("initialize statevector must be normalized")
        self.instructions.append(
            Instruction(name="initialize", qubits=qubits, state=state.copy())
        )
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        """Reset a qubit to |0> (measure and conditionally flip)."""
        qubits = self._check_qubits([qubit])
        self.instructions.append(Instruction(name="reset", qubits=qubits))
        return self

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        """Measure ``qubit`` in the computational basis into ``clbit``."""
        qubits = self._check_qubits([qubit])
        clbits = self._check_clbits([clbit])
        self.instructions.append(
            Instruction(name="measure", qubits=qubits, clbits=clbits)
        )
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit with the same index."""
        if self.num_clbits < self.num_qubits:
            raise ValueError("not enough classical bits to measure every qubit")
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Insert a barrier (a no-op marker that blocks transpiler optimization)."""
        targets = qubits if qubits else tuple(range(self.num_qubits))
        targets = self._check_qubits(targets)
        self.instructions.append(Instruction(name="barrier", qubits=targets))
        return self

    # ---------------------------------------------------------------- structure
    def compose(self, other: "QuantumCircuit",
                qubits: Optional[Sequence[int]] = None,
                clbits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Append ``other``'s instructions onto this circuit (in place).

        Parameters
        ----------
        other:
            Circuit whose instructions are appended.
        qubits:
            Mapping from ``other``'s qubit indices to this circuit's qubits.  By
            default qubit ``i`` maps to qubit ``i``.
        clbits:
            Mapping for classical bits, analogous to ``qubits``.
        """
        if qubits is None:
            qubit_map = list(range(other.num_qubits))
        else:
            qubit_map = [int(q) for q in qubits]
        if len(qubit_map) != other.num_qubits:
            raise ValueError("qubit mapping length must equal other.num_qubits")
        if clbits is None:
            clbit_map = list(range(other.num_clbits))
        else:
            clbit_map = [int(c) for c in clbits]
        for instruction in other.instructions:
            mapped_qubits = tuple(qubit_map[q] for q in instruction.qubits)
            mapped_clbits = tuple(clbit_map[c] for c in instruction.clbits)
            self.append(
                Instruction(
                    name=instruction.name,
                    qubits=mapped_qubits,
                    params=instruction.params,
                    clbits=mapped_clbits,
                    matrix=instruction.matrix,
                    state=instruction.state,
                )
            )
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return a new circuit implementing the inverse unitary.

        Only unitary circuits can be inverted; barriers are preserved.
        """
        inverted = QuantumCircuit(self.num_qubits, self.num_clbits,
                                  name=f"{self.name}_dg")
        for instruction in reversed(self.instructions):
            if instruction.name == "barrier":
                inverted.instructions.append(instruction)
                continue
            inverted.instructions.append(instruction.inverse())
        return inverted

    def copy(self) -> "QuantumCircuit":
        """Deep copy of the circuit."""
        duplicate = QuantumCircuit(self.num_qubits, self.num_clbits, name=self.name)
        duplicate.instructions = copy.deepcopy(self.instructions)
        return duplicate

    # --------------------------------------------------------------- diagnostics
    @property
    def has_nonunitary_operations(self) -> bool:
        """True when the circuit contains reset, measure, or initialize."""
        return any(
            instr.name in {"reset", "measure", "initialize"}
            for instr in self.instructions
        )

    def count_ops(self) -> Dict[str, int]:
        """Histogram of instruction names."""
        counts: Dict[str, int] = {}
        for instruction in self.instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth (barriers excluded, each instruction has unit duration)."""
        frontier = [0] * self.num_qubits
        for instruction in self.instructions:
            if instruction.name == "barrier":
                continue
            level = max(frontier[q] for q in instruction.qubits) + 1
            for qubit in instruction.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def size(self) -> int:
        """Number of non-barrier instructions."""
        return sum(1 for instr in self.instructions if instr.name != "barrier")

    def two_qubit_gate_count(self) -> int:
        """Number of unitary gates acting on two or more qubits."""
        return sum(
            1
            for instr in self.instructions
            if instr.is_unitary and len(instr.qubits) >= 2
        )

    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the whole circuit (unitary instructions only).

        Raises
        ------
        ValueError
            If the circuit contains non-unitary instructions.
        """
        if self.has_nonunitary_operations:
            raise ValueError("circuit with reset/measure/initialize has no unitary")
        dim = 2 ** self.num_qubits
        unitary = np.eye(dim, dtype=complex)
        from repro.quantum.statevector import expand_gate  # local import, no cycle

        for instruction in self.instructions:
            if instruction.name == "barrier":
                continue
            full = expand_gate(
                instruction.matrix_or_standard(), instruction.qubits, self.num_qubits
            )
            unitary = full @ unitary
        return unitary

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterable[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_clbits={self.num_clbits}, size={self.size()})"
        )
