"""Fake backend descriptions used to build realistic noise models.

The paper's noisy evaluation uses median calibration data from IBM's Brisbane
device.  :class:`FakeBrisbane` reproduces exactly the figures quoted in the paper
(Section V, "Experimental Setup") and converts them into a :class:`NoiseModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.quantum.noise import (
    NoiseModel,
    QuantumError,
    ReadoutError,
    depolarizing_kraus,
    thermal_relaxation_kraus,
)

__all__ = ["BackendProperties", "FakeBrisbane", "FakeIdealBackend"]


@dataclass(frozen=True)
class BackendProperties:
    """Calibration-style description of a (fake) quantum device.

    Times are in microseconds; errors are probabilities per gate execution.
    """

    name: str
    num_qubits: int
    t1_us: float
    t2_us: float
    single_qubit_gate_error: float
    two_qubit_gate_error: float
    readout_error: float
    single_qubit_gate_time_us: float = 0.035
    two_qubit_gate_time_us: float = 0.500
    basis_gates: Tuple[str, ...] = ("rz", "sx", "x", "cx")

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("a backend needs at least one qubit")
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ValueError("coherence times must be positive")
        for error in (self.single_qubit_gate_error, self.two_qubit_gate_error,
                      self.readout_error):
            if not 0.0 <= error <= 1.0:
                raise ValueError("error rates must be probabilities")

    def to_noise_model(self, include_thermal_relaxation: bool = True) -> NoiseModel:
        """Build a :class:`NoiseModel` from the calibration figures.

        Depolarizing errors carry the reported gate infidelities; thermal
        relaxation over the gate duration is composed on top when
        ``include_thermal_relaxation`` is set.
        """
        model = NoiseModel()
        single_kraus = depolarizing_kraus(self.single_qubit_gate_error, 1)
        double_kraus = depolarizing_kraus(self.two_qubit_gate_error, 2)
        model.add_all_single_qubit_error(QuantumError.from_kraus(single_kraus))
        model.add_all_two_qubit_error(QuantumError.from_kraus(double_kraus))
        if include_thermal_relaxation:
            relaxation = thermal_relaxation_kraus(
                self.t1_us, self.t2_us, self.single_qubit_gate_time_us
            )
            model.add_gate_error("thermal_1q",
                                 QuantumError.from_kraus(relaxation))
        model.set_readout_error(ReadoutError.symmetric(self.readout_error))
        return model


class FakeBrisbane(BackendProperties):
    """Brisbane-like backend using the median figures quoted in the paper."""

    def __init__(self, num_qubits: int = 7) -> None:
        super().__init__(
            name="fake_brisbane",
            num_qubits=num_qubits,
            t1_us=230.42,
            t2_us=143.41,
            single_qubit_gate_error=2.274e-4,
            two_qubit_gate_error=2.903e-3,
            readout_error=1.38e-2,
        )


class FakeIdealBackend(BackendProperties):
    """A noiseless backend with the same interface (useful for A/B experiments)."""

    def __init__(self, num_qubits: int = 7) -> None:
        super().__init__(
            name="fake_ideal",
            num_qubits=num_qubits,
            t1_us=1e9,
            t2_us=1e9,
            single_qubit_gate_error=0.0,
            two_qubit_gate_error=0.0,
            readout_error=0.0,
        )
