"""The random autoencoder ansatz (Fig. 5 of the paper).

The ansatz is a layered circuit of RX and RZ rotations followed by a linear chain
of CX gates.  Quorum never trains these angles: they are drawn uniformly from
``U(0, 2*pi)`` per ensemble member, and the decoder applies the exact inverse
(negated angles, reversed gate order), so that without the reset bottleneck the
encoder-decoder pair would be the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.circuit import QuantumCircuit

__all__ = ["RandomAutoencoderAnsatz"]

_ENTANGLEMENTS = ("linear", "ring", "full")


@dataclass
class RandomAutoencoderAnsatz:
    """Randomly parameterized encoder/decoder pair.

    Parameters
    ----------
    num_qubits:
        Register size the ansatz acts on.
    num_layers:
        Number of rotation + entanglement blocks (the paper's Fig. 5 shows two).
    entanglement:
        CX pattern per block: ``"linear"`` chain, ``"ring"`` (chain plus wraparound),
        or ``"full"`` (all ordered pairs).
    seed:
        Seed for the angle-generating RNG; pass a fresh seed per ensemble member.
    """

    num_qubits: int
    num_layers: int = 2
    entanglement: str = "linear"
    seed: Optional[int] = None
    angles_: Optional[np.ndarray] = field(default=None, repr=False)
    _encoder_unitary: Optional[np.ndarray] = field(default=None, init=False,
                                                   repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("ansatz needs at least one qubit")
        if self.num_layers < 1:
            raise ValueError("ansatz needs at least one layer")
        if self.entanglement not in _ENTANGLEMENTS:
            raise ValueError(
                f"entanglement must be one of {_ENTANGLEMENTS}, got "
                f"{self.entanglement!r}"
            )
        if self.angles_ is None:
            rng = np.random.default_rng(self.seed)
            self.angles_ = rng.uniform(0.0, 2.0 * np.pi, size=self.num_parameters)
        else:
            self.angles_ = np.array(self.angles_, dtype=float)
            if self.angles_.shape != (self.num_parameters,):
                raise ValueError(
                    f"expected {self.num_parameters} angles, got {self.angles_.shape}"
                )
        # The cached encoder unitary assumes the angles never change; freeze
        # them so a stale cache cannot be produced by in-place mutation (use
        # with_new_angles for a fresh draw).
        self.angles_.setflags(write=False)

    # ------------------------------------------------------------------ layout
    @property
    def num_parameters(self) -> int:
        """Two rotations (RX, RZ) per qubit per layer."""
        return 2 * self.num_qubits * self.num_layers

    def _entangling_pairs(self) -> List[Tuple[int, int]]:
        if self.entanglement == "linear":
            return [(q, q + 1) for q in range(self.num_qubits - 1)]
        if self.entanglement == "ring":
            pairs = [(q, q + 1) for q in range(self.num_qubits - 1)]
            if self.num_qubits > 2:
                pairs.append((self.num_qubits - 1, 0))
            return pairs
        return [(a, b) for a in range(self.num_qubits)
                for b in range(a + 1, self.num_qubits)]

    # ---------------------------------------------------------------- circuits
    def encoder_circuit(self, qubits: Optional[Sequence[int]] = None,
                        num_circuit_qubits: Optional[int] = None) -> QuantumCircuit:
        """The encoder ``E(theta)`` as a circuit on ``qubits``.

        Parameters
        ----------
        qubits:
            Physical qubits the ansatz acts on (defaults to ``0 .. num_qubits-1``).
        num_circuit_qubits:
            Total size of the returned circuit (defaults to the maximum target + 1).
        """
        qubits = list(qubits) if qubits is not None else list(range(self.num_qubits))
        if len(qubits) != self.num_qubits:
            raise ValueError("qubit list length must equal num_qubits")
        size = num_circuit_qubits if num_circuit_qubits is not None else max(qubits) + 1
        circuit = QuantumCircuit(size, size, name="encoder")
        angle_index = 0
        for _ in range(self.num_layers):
            for qubit in qubits:
                circuit.rx(float(self.angles_[angle_index]), qubit)
                angle_index += 1
            for qubit in qubits:
                circuit.rz(float(self.angles_[angle_index]), qubit)
                angle_index += 1
            for control, target in self._entangling_pairs():
                circuit.cx(qubits[control], qubits[target])
        return circuit

    def decoder_circuit(self, qubits: Optional[Sequence[int]] = None,
                        num_circuit_qubits: Optional[int] = None) -> QuantumCircuit:
        """The decoder ``D(theta) = E(theta)^-1`` (negated angles, reversed order)."""
        encoder = self.encoder_circuit(qubits, num_circuit_qubits)
        decoder = encoder.inverse()
        decoder.name = "decoder"
        return decoder

    def encoder_unitary(self) -> np.ndarray:
        """Dense unitary of the encoder on its own ``num_qubits`` register.

        The matrix is built once per ansatz (i.e. once per ensemble member) and
        cached: the angles are immutable after construction, so every engine and
        every compression level can reuse the same ``E`` / ``E^dagger``.  The
        returned array is marked read-only to protect the cache.

        Construction always uses the numpy reference backend on purpose: the
        result is a tiny ``2^n x 2^n`` ndarray of plain data that every
        simulation backend consumes as input, so there is nothing to gain from
        building it on an accelerator (and the cache stays backend-agnostic).
        """
        if self._encoder_unitary is None:
            from repro.quantum.backend import get_simulation_backend

            circuit = self.encoder_circuit(list(range(self.num_qubits)))
            instructions = [
                (instruction.matrix_or_standard(), instruction.qubits)
                for instruction in circuit.instructions
                if instruction.name != "barrier"
            ]
            unitary = get_simulation_backend("numpy").unitary_from_instructions(
                instructions, self.num_qubits
            )
            unitary.setflags(write=False)
            self._encoder_unitary = unitary
        return self._encoder_unitary

    def with_new_angles(self, seed: Optional[int] = None) -> "RandomAutoencoderAnsatz":
        """A fresh ansatz with the same structure but newly drawn random angles."""
        return RandomAutoencoderAnsatz(
            num_qubits=self.num_qubits,
            num_layers=self.num_layers,
            entanglement=self.entanglement,
            seed=seed,
        )
