"""Assembly of Quorum's full autoencoder + SWAP-test circuit (Figs. 2 and 6).

Each circuit has ``2n + 1`` qubits:

* register A (qubits ``0 .. n-1``): the sample amplitude-encoded and pushed through
  the random encoder, the partial reset (information bottleneck), and the decoder;
* register B (qubits ``n .. 2n-1``): the untouched reference encoding of the same
  sample;
* the ancilla (qubit ``2n``): SWAP-test readout, measured into classical bit 0.

Besides circuit construction, :func:`analytic_swap_test_p1` computes the exact
ancilla statistics from the reduced density matrix of register A -- the partial
reset makes A mixed, and for a mixed A the SWAP test measures
``P(1) = (1 - Tr(rho_A |psi><psi|)) / 2``.  The fast path is cross-validated against
the full circuit simulators in the test suite and used by the detector for large
noiseless sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.swap_test import append_swap_test
from repro.encoding.amplitude import state_preparation_circuit
from repro.quantum.backend import SimulationBackend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.compiler import (
    CircuitCompiler,
    CompiledProgram,
    default_compiler,
)
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import Statevector

__all__ = [
    "build_autoencoder_circuit",
    "build_autoencoder_prefix",
    "build_autoencoder_suffix",
    "analytic_swap_test_p1",
    "QuorumCircuitFactory",
]


def build_autoencoder_prefix(amplitudes: Sequence[float],
                             ansatz: RandomAutoencoderAnsatz,
                             gate_level_encoding: bool = False) -> QuantumCircuit:
    """The level-independent head of the Quorum circuit for one sample.

    Covers the amplitude encoding of both registers and the encoder ansatz on
    register A -- everything *before* the compression-level-dependent reset
    block.  A whole compression sweep shares this prefix, which is what lets
    the checkpointed density-matrix walk in
    :class:`repro.quantum.simulator.BatchedDensityMatrixSimulator` evolve it
    exactly once and replay only :func:`build_autoencoder_suffix` per level.

    Parameters
    ----------
    amplitudes:
        Length ``2**n`` non-negative amplitude vector (from the amplitude encoder).
    ansatz:
        The random encoder/decoder pair acting on register A.
    gate_level_encoding:
        Synthesize RY/CX state preparation instead of ``initialize`` instructions
        (needed for noisy simulation, where state preparation should also be noisy).
    """
    amplitudes = np.asarray(amplitudes, dtype=float).ravel()
    num_qubits = ansatz.num_qubits
    if amplitudes.shape[0] != 2 ** num_qubits:
        raise ValueError(
            f"amplitude vector of length {amplitudes.shape[0]} does not match the "
            f"{num_qubits}-qubit ansatz"
        )
    total_qubits = 2 * num_qubits + 1
    circuit = QuantumCircuit(total_qubits, 1, name="quorum_autoencoder_prefix")
    register_a = list(range(num_qubits))
    register_b = list(range(num_qubits, 2 * num_qubits))

    if gate_level_encoding:
        preparation = state_preparation_circuit(amplitudes, num_qubits)
        circuit.compose(preparation, qubits=register_a,
                        clbits=[0] * preparation.num_clbits)
        circuit.compose(preparation, qubits=register_b,
                        clbits=[0] * preparation.num_clbits)
    else:
        circuit.initialize(amplitudes, register_a)
        circuit.initialize(amplitudes, register_b)
    circuit.barrier()

    encoder = ansatz.encoder_circuit(register_a, num_circuit_qubits=total_qubits)
    circuit.compose(encoder, clbits=[0] * encoder.num_clbits)
    return circuit


def build_autoencoder_suffix(ansatz: RandomAutoencoderAnsatz,
                             compression_level: int,
                             measure: bool = True) -> QuantumCircuit:
    """The per-level tail of the Quorum circuit: reset block onward.

    Covers the information bottleneck (``compression_level`` resets), the
    decoder, and the SWAP test with optional ancilla readout.  The suffix
    carries *no sample data* -- it is identical for every sample of a batch --
    so a checkpointed walker can replay one suffix circuit against a whole
    post-prefix density batch.  Composing
    :func:`build_autoencoder_prefix` + this suffix reproduces
    :func:`build_autoencoder_circuit` instruction for instruction.
    """
    num_qubits = ansatz.num_qubits
    if not 0 <= compression_level <= num_qubits:
        raise ValueError(
            f"compression level must be in [0, {num_qubits}], got {compression_level}"
        )
    total_qubits = 2 * num_qubits + 1
    circuit = QuantumCircuit(total_qubits, 1,
                             name=f"quorum_autoencoder_suffix_l{compression_level}")
    register_a = list(range(num_qubits))
    register_b = list(range(num_qubits, 2 * num_qubits))
    ancilla = 2 * num_qubits

    for qubit in range(compression_level):
        circuit.reset(qubit)
    decoder = ansatz.decoder_circuit(register_a, num_circuit_qubits=total_qubits)
    circuit.compose(decoder, clbits=[0] * decoder.num_clbits)
    circuit.barrier()

    append_swap_test(circuit, ancilla, register_a, register_b, clbit=0,
                     measure=measure)
    return circuit


def build_autoencoder_circuit(amplitudes: Sequence[float],
                              ansatz: RandomAutoencoderAnsatz,
                              compression_level: int,
                              gate_level_encoding: bool = False,
                              measure: bool = True) -> QuantumCircuit:
    """Build the full ``2n + 1``-qubit Quorum circuit for one sample.

    The circuit is assembled as :func:`build_autoencoder_prefix` (encoding +
    encoder ansatz, level-independent) followed by
    :func:`build_autoencoder_suffix` (reset block + decoder + SWAP test, shared
    by every sample), so the split builders and this one-call builder cannot
    drift apart.

    Parameters
    ----------
    amplitudes:
        Length ``2**n`` non-negative amplitude vector (from the amplitude encoder).
    ansatz:
        The random encoder/decoder pair acting on register A.
    compression_level:
        Number of register-A qubits reset between encoder and decoder
        (``0 <= compression_level <= n``; 0 disables the bottleneck).
    gate_level_encoding:
        Synthesize RY/CX state preparation instead of ``initialize`` instructions
        (needed for noisy simulation, where state preparation should also be noisy).
    measure:
        Measure the ancilla into classical bit 0.
    """
    if not 0 <= compression_level <= ansatz.num_qubits:
        raise ValueError(
            f"compression level must be in [0, {ansatz.num_qubits}], got "
            f"{compression_level}"
        )
    circuit = build_autoencoder_prefix(amplitudes, ansatz,
                                       gate_level_encoding=gate_level_encoding)
    circuit.name = "quorum_autoencoder"
    suffix = build_autoencoder_suffix(ansatz, compression_level, measure=measure)
    circuit.compose(suffix)
    return circuit


def analytic_swap_test_p1(amplitudes: Sequence[float],
                          ansatz: RandomAutoencoderAnsatz,
                          compression_level: int) -> float:
    """Exact ancilla P(1) of the circuit built by :func:`build_autoencoder_circuit`.

    Works directly on register A's ``n``-qubit density matrix: encode, apply the
    encoder unitary, reset the bottleneck qubits, apply the decoder, and take the
    overlap with the untouched encoding of the same sample.
    """
    amplitudes = np.asarray(amplitudes, dtype=float).ravel()
    num_qubits = ansatz.num_qubits
    if amplitudes.shape[0] != 2 ** num_qubits:
        raise ValueError("amplitude vector does not match the ansatz size")
    if not 0 <= compression_level <= num_qubits:
        raise ValueError("compression level out of range")
    reference = Statevector(amplitudes.astype(complex))
    encoder_unitary = ansatz.encoder_unitary()
    rho = DensityMatrix.from_statevector(reference)
    rho = rho.evolve_gate(encoder_unitary, list(range(num_qubits)))
    for qubit in range(compression_level):
        rho = rho.reset_qubit(qubit)
    rho = rho.evolve_gate(encoder_unitary.conj().T, list(range(num_qubits)))
    overlap = rho.overlap(DensityMatrix.from_statevector(reference))
    p1 = (1.0 - overlap) / 2.0
    return float(min(max(p1, 0.0), 0.5))


@dataclass(frozen=True)
class QuorumCircuitFactory:
    """Convenience wrapper binding an ansatz to the circuit/fast-path builders.

    The factory also carries the :class:`~repro.quantum.compiler
    .CircuitCompiler` whose LRU cache holds this ansatz's compiled artifacts
    (fused encoder unitary, per-level suffix channels and Heisenberg-picture
    observables).  By default that is the process-wide shared compiler, so
    engines, simulators, and factories all reuse one cache.
    """

    ansatz: RandomAutoencoderAnsatz
    compiler: CircuitCompiler = field(default_factory=default_compiler)

    @property
    def num_qubits(self) -> int:
        """Register size n (the full circuit uses ``2n + 1`` qubits)."""
        return self.ansatz.num_qubits

    @property
    def total_qubits(self) -> int:
        """Total circuit width including the reference register and the ancilla."""
        return 2 * self.ansatz.num_qubits + 1

    def circuit(self, amplitudes: Sequence[float], compression_level: int,
                gate_level_encoding: bool = False,
                measure: bool = True) -> QuantumCircuit:
        """Full circuit for one sample at one compression level."""
        return build_autoencoder_circuit(amplitudes, self.ansatz, compression_level,
                                         gate_level_encoding=gate_level_encoding,
                                         measure=measure)

    def prefix(self, amplitudes: Sequence[float],
               gate_level_encoding: bool = False) -> QuantumCircuit:
        """Level-independent head (encoding + encoder) shared by a level sweep."""
        return build_autoencoder_prefix(amplitudes, self.ansatz,
                                        gate_level_encoding=gate_level_encoding)

    def suffix(self, compression_level: int,
               measure: bool = True) -> QuantumCircuit:
        """Per-level, sample-independent tail (reset + decoder + SWAP test)."""
        return build_autoencoder_suffix(self.ansatz, compression_level,
                                        measure=measure)

    def analytic_p1(self, amplitudes: Sequence[float],
                    compression_level: int) -> float:
        """Exact SWAP-test P(1) via the reduced-density-matrix fast path."""
        return analytic_swap_test_p1(amplitudes, self.ansatz, compression_level)

    # ------------------------------------------------------ compiled artifacts
    def encoder_unitary(self,
                        backend: Union[str, SimulationBackend, None] = None
                        ) -> np.ndarray:
        """The encoder as ONE fused ``2^n x 2^n`` unitary (compiler-cached)."""
        return self.compiler.fused_unitary(
            self.ansatz.encoder_circuit(list(range(self.num_qubits))), backend
        )

    def compiled_suffix_channel(self, compression_level: int,
                                noise_model: Optional[NoiseModel] = None,
                                backend: Union[str, SimulationBackend,
                                               None] = None
                                ) -> CompiledProgram:
        """The per-level suffix as a compiled channel program.

        Gates are fused with their ``noise_model`` channels and the reset
        block into dense support-block superoperators; a GPU
        :class:`~repro.quantum.backend.SimulationBackend` consumes the same
        program unchanged through ``apply_compiled_superoperator_batch``.
        """
        return self.compiler.channel_program(
            self.suffix(compression_level, measure=False), noise_model, backend
        )

    def suffix_observable(self, compression_level: int,
                          noise_model: Optional[NoiseModel] = None,
                          backend: Union[str, SimulationBackend, None] = None
                          ) -> np.ndarray:
        """Heisenberg-picture observable of the suffix + ancilla readout.

        ``W = C^dagger(|1><1|_ancilla)`` for the level's suffix channel ``C``:
        the SWAP-test P(1) of a post-prefix density batch is
        ``backend.observable_expectation_density_batch(checkpoint, W)`` -- one
        batched matmul per compression level.
        """
        return self.compiler.dual_observable(
            self.suffix(compression_level, measure=False), noise_model,
            2 * self.num_qubits, backend,
        )
