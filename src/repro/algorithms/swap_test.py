"""The SWAP test (Section II-B of the paper).

The SWAP test estimates the overlap between the states of two equally sized
registers: with an ancilla prepared in ``|+>``, controlled-SWAPs between the
registers, and a final Hadamard, the ancilla reads 1 with probability
``P(1) = (1 - O) / 2`` where ``O`` is the overlap (``|<phi|psi>|^2`` for pure
states, ``Tr(rho sigma)`` in general).  Quorum uses ``P(1)`` directly as the
per-sample circuit output.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.quantum.circuit import QuantumCircuit

__all__ = [
    "append_swap_test",
    "swap_test_circuit",
    "overlap_from_p1",
    "overlap_from_counts",
    "p1_from_counts",
]


def append_swap_test(circuit: QuantumCircuit, ancilla: int,
                     register_a: Sequence[int], register_b: Sequence[int],
                     clbit: int = 0, measure: bool = True) -> QuantumCircuit:
    """Append a SWAP test between two registers onto an existing circuit.

    Parameters
    ----------
    circuit:
        Circuit to extend (modified in place and returned).
    ancilla:
        Ancilla qubit used for the interference measurement.
    register_a, register_b:
        Equal-length qubit lists whose states are compared pairwise.
    clbit:
        Classical bit receiving the ancilla measurement.
    measure:
        Set False to skip the final measurement (useful when the caller computes
        probabilities analytically from the final state).
    """
    register_a = list(register_a)
    register_b = list(register_b)
    if len(register_a) != len(register_b):
        raise ValueError("SWAP test registers must have the same size")
    if ancilla in register_a or ancilla in register_b:
        raise ValueError("the ancilla cannot belong to either register")
    overlap = set(register_a) & set(register_b)
    if overlap:
        raise ValueError(f"registers overlap on qubits {sorted(overlap)}")
    circuit.h(ancilla)
    for qubit_a, qubit_b in zip(register_a, register_b):
        circuit.cswap(ancilla, qubit_a, qubit_b)
    circuit.h(ancilla)
    if measure:
        circuit.measure(ancilla, clbit)
    return circuit


def swap_test_circuit(register_size: int, measure: bool = True) -> QuantumCircuit:
    """A standalone SWAP-test circuit over ``2 * register_size + 1`` qubits.

    Qubit 0 is the ancilla, qubits ``1 .. n`` are register A, and qubits
    ``n+1 .. 2n`` are register B, matching the layout in the paper's Fig. 2.
    """
    if register_size < 1:
        raise ValueError("register size must be positive")
    num_qubits = 2 * register_size + 1
    circuit = QuantumCircuit(num_qubits, 1, name="swap_test")
    register_a = list(range(1, register_size + 1))
    register_b = list(range(register_size + 1, num_qubits))
    return append_swap_test(circuit, 0, register_a, register_b, clbit=0,
                            measure=measure)


def overlap_from_p1(p1: float) -> float:
    """Convert the ancilla's P(1) into the register overlap, clipped to [0, 1]."""
    overlap = 1.0 - 2.0 * p1
    return min(max(overlap, 0.0), 1.0)


def p1_from_counts(counts: Dict[str, int], clbit: int = 0) -> float:
    """Empirical P(ancilla = 1) from a counts dictionary."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty counts")
    ones = 0
    for bitstring, count in counts.items():
        if bitstring[len(bitstring) - 1 - clbit] == "1":
            ones += count
    return ones / total


def overlap_from_counts(counts: Dict[str, int], clbit: int = 0) -> float:
    """Empirical overlap estimate from SWAP-test measurement counts."""
    return overlap_from_p1(p1_from_counts(counts, clbit))
