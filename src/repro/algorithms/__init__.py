"""Quantum algorithm building blocks: SWAP test and the random autoencoder ansatz."""

from repro.algorithms.swap_test import (
    append_swap_test,
    overlap_from_counts,
    overlap_from_p1,
    swap_test_circuit,
)
from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import (
    QuorumCircuitFactory,
    analytic_swap_test_p1,
    build_autoencoder_circuit,
)

__all__ = [
    "append_swap_test",
    "swap_test_circuit",
    "overlap_from_counts",
    "overlap_from_p1",
    "RandomAutoencoderAnsatz",
    "QuorumCircuitFactory",
    "build_autoencoder_circuit",
    "analytic_swap_test_p1",
]
