"""Command-line interface for the Quorum reproduction.

Installed as the ``quorum-repro`` console script::

    quorum-repro datasets                         # list Table I datasets
    quorum-repro detect --dataset breast_cancer   # run Quorum, print metrics
    quorum-repro detect --csv mydata.csv --label-column is_anomaly
    quorum-repro compare --dataset power_plant    # Quorum vs classical baselines
    quorum-repro experiment table1 fig8 table2    # regenerate paper artifacts
    quorum-repro report --output report.md        # full evaluation report

Every command prints GitHub-flavoured markdown so output can be pasted straight
into issues or EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.baselines import (
    HBOSDetector,
    IsolationForestDetector,
    KMeansDetector,
    LocalOutlierFactorDetector,
    PCAReconstructionDetector,
)
from repro.core.detector import QuorumDetector
from repro.data.dataset import Dataset
from repro.data.io import load_dataset_csv
from repro.data.registry import DATASET_SPECS, available_datasets, load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.fig10 import format_fig10, run_fig10
from repro.experiments.report import render_report, run_full_evaluation, write_report
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.core.parallel import available_executors
from repro.metrics.classification import evaluate_top_k
from repro.metrics.detection import detection_rate_curve
from repro.quantum.backend import available_simulation_backends

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="quorum-repro",
        description="Zero-training quantum anomaly detection (Quorum, DAC 2025) "
                    "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the Table I evaluation datasets")

    detect = subparsers.add_parser("detect", help="run Quorum on a dataset")
    _add_data_arguments(detect)
    detect.add_argument("--ensembles", type=int, default=50,
                        help="number of ensemble members (paper: 1000)")
    detect.add_argument("--shots", type=int, default=4096,
                        help="shots per circuit; 0 means exact probabilities")
    detect.add_argument("--qubits", type=int, default=3,
                        help="encoding qubits n (circuits use 2n+1 qubits)")
    detect.add_argument("--bucket-probability", type=float, default=0.75,
                        help="target probability of >=1 anomaly per bucket")
    detect.add_argument("--anomaly-fraction", type=float, default=None,
                        help="estimated anomaly fraction (default: 0.05)")
    detect.add_argument("--backend", choices=("analytic", "density_matrix",
                                              "statevector"), default="analytic")
    detect.add_argument("--simulation-backend",
                        choices=available_simulation_backends(), default="numpy",
                        help="batched numerical kernel implementation the "
                             "engines run on")
    detect.add_argument("--noisy", action="store_true",
                        help="apply the Brisbane-like noise model "
                             "(requires --backend density_matrix)")
    detect.add_argument("--seed", type=int, default=1234)
    detect.add_argument("--top", type=int, default=10,
                        help="how many top-scoring samples to list")
    _add_executor_arguments(detect)

    compare = subparsers.add_parser("compare",
                                    help="compare Quorum against classical baselines")
    _add_data_arguments(compare)
    compare.add_argument("--ensembles", type=int, default=50)
    compare.add_argument("--seed", type=int, default=1234)
    _add_executor_arguments(compare)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate paper tables/figures (table1, fig8, fig9, "
                           "fig10, table2)")
    experiment.add_argument("artifacts", nargs="+",
                            choices=("table1", "fig8", "fig9", "fig10", "table2"),
                            help="which artifacts to regenerate")
    experiment.add_argument("--ensembles", type=int, default=60)
    experiment.add_argument("--seed", type=int, default=11)
    experiment.add_argument("--skip-noisy", action="store_true",
                            help="skip the expensive noisy runs in fig9")
    _add_executor_arguments(experiment)

    report = subparsers.add_parser("report", help="run the full evaluation sweep")
    report.add_argument("--ensembles", type=int, default=60)
    report.add_argument("--seed", type=int, default=11)
    report.add_argument("--skip-noisy", action="store_true")
    report.add_argument("--output", type=str, default=None,
                        help="write the markdown report to this path")
    report.add_argument("--json", type=str, default=None,
                        help="also dump machine-readable results to this path")
    _add_executor_arguments(report)

    return parser


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", choices=available_executors(),
                        default="auto",
                        help="ensemble executor strategy; results are "
                             "bit-identical across strategies for a fixed seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="ensemble workers (default: 1, or the CPU count "
                             "when --executor names a parallel strategy)")
    parser.add_argument("--no-compile", action="store_true",
                        help="interpret circuits gate by gate instead of "
                             "executing cached compiled operator programs "
                             "(reference path; slower)")


def _resolve_jobs(args: argparse.Namespace) -> int:
    """One worker by default; naming a parallel executor implies a real pool."""
    if args.jobs is not None:
        return args.jobs
    if args.executor in ("threads", "processes"):
        return os.cpu_count() or 1
    return 1


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", choices=available_datasets(),
                       help="one of the Table I datasets")
    group.add_argument("--csv", type=str, help="path to a CSV file")
    parser.add_argument("--label-column", type=str, default="label",
                        help="label column name for --csv input")
    parser.add_argument("--data-seed", type=int, default=0,
                        help="generation seed for the synthetic Table I datasets")


def _load_data(args: argparse.Namespace) -> Dataset:
    if args.dataset:
        return load_dataset(args.dataset, seed=args.data_seed)
    return load_dataset_csv(args.csv, label_column=args.label_column)


def _command_datasets(_: argparse.Namespace) -> int:
    rows = [
        (spec.display_name, spec.name, spec.samples, spec.anomalies, spec.features,
         spec.bucket_probability)
        for spec in DATASET_SPECS.values()
    ]
    print(markdown_table(
        ["Dataset", "key", "Samples", "Anomalies", "Features", "Pr[anomaly/bucket]"],
        rows))
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    dataset = _load_data(args)
    shots = None if args.shots == 0 else args.shots
    detector = QuorumDetector(
        num_qubits=args.qubits,
        ensemble_groups=args.ensembles,
        shots=shots,
        bucket_probability=args.bucket_probability,
        anomaly_fraction_estimate=args.anomaly_fraction,
        backend=args.backend,
        simulation_backend=args.simulation_backend,
        compile_circuits=not args.no_compile,
        noisy=args.noisy,
        seed=args.seed,
        executor=args.executor,
        n_jobs=_resolve_jobs(args),
    )
    detector.fit(dataset)
    scores = detector.anomaly_scores()

    print(f"Dataset: {dataset.name} ({dataset.num_samples} samples, "
          f"{dataset.num_features} features)")
    if dataset.num_anomalies > 0:
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        curve = detection_rate_curve(scores, dataset.labels)
        print(markdown_table(
            ["Precision", "Recall", "F1", "Accuracy", "DR@10%", "DR@20%"],
            [(f"{report.precision:.3f}", f"{report.recall:.3f}",
              f"{report.f1:.3f}", f"{report.accuracy:.3f}",
              f"{curve.rate_at(0.10):.2f}", f"{curve.rate_at(0.20):.2f}")]))
    print(f"\nTop {args.top} samples by anomaly score:")
    rows = []
    for index in detector.ranking()[: args.top]:
        label = "anomaly" if dataset.labels[index] else "normal"
        rows.append((int(index), f"{scores[index]:.2f}",
                     label if dataset.num_anomalies else "?"))
    print(markdown_table(["sample", "score", "true label"], rows))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    dataset = _load_data(args)
    if dataset.num_anomalies == 0:
        print("the compare command needs labeled data to report metrics",
              file=sys.stderr)
        return 2
    detector = QuorumDetector(ensemble_groups=args.ensembles, shots=4096,
                              seed=args.seed,
                              anomaly_fraction_estimate=dataset.anomaly_fraction,
                              compile_circuits=not args.no_compile,
                              executor=args.executor, n_jobs=_resolve_jobs(args))
    detector.fit(dataset)
    methods = {
        "Quorum (quantum)": detector.anomaly_scores(),
        "Isolation Forest": IsolationForestDetector(seed=args.seed).fit_scores(
            dataset.data),
        "Local Outlier Factor": LocalOutlierFactorDetector().fit_scores(dataset.data),
        "HBOS": HBOSDetector().fit_scores(dataset.data),
        "k-means distance": KMeansDetector(seed=args.seed).fit_scores(dataset.data),
        "PCA reconstruction": PCAReconstructionDetector().fit_scores(dataset.data),
    }
    rows = []
    for name, scores in methods.items():
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        rows.append((name, f"{report.precision:.3f}", f"{report.recall:.3f}",
                     f"{report.f1:.3f}"))
    print(markdown_table(["Method", "Precision", "Recall", "F1"], rows))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(ensemble_groups=args.ensembles, seed=args.seed,
                                  compile_circuits=not args.no_compile,
                                  executor=args.executor, n_jobs=_resolve_jobs(args))
    for artifact in args.artifacts:
        if artifact == "table1":
            print("\n## Table I\n")
            print(format_table1(run_table1(seed=settings.seed)))
        elif artifact == "fig8":
            print("\n## Fig. 8\n")
            print(format_fig8(run_fig8(settings)))
        elif artifact == "fig9":
            print("\n## Fig. 9\n")
            print(format_fig9(run_fig9(settings,
                                       include_noisy=not args.skip_noisy)))
        elif artifact == "fig10":
            print("\n## Fig. 10\n")
            print(format_fig10(run_fig10(settings)))
        elif artifact == "table2":
            print("\n## Table II\n")
            print(format_table2(run_table2(settings)))
    return 0


def _command_report(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(ensemble_groups=args.ensembles, seed=args.seed,
                                  compile_circuits=not args.no_compile,
                                  executor=args.executor, n_jobs=_resolve_jobs(args))
    report = run_full_evaluation(settings, include_noisy=not args.skip_noisy)
    if args.output:
        path = write_report(report, args.output, json_path=args.json)
        print(f"report written to {path}")
    else:
        print(render_report(report))
    return 0


_COMMANDS = {
    "datasets": _command_datasets,
    "detect": _command_detect,
    "compare": _command_compare,
    "experiment": _command_experiment,
    "report": _command_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
