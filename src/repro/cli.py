"""Command-line interface for the Quorum reproduction.

Installed as the ``quorum-repro`` console script::

    quorum-repro datasets                         # list Table I datasets
    quorum-repro detect --dataset breast_cancer   # run Quorum, print metrics
    quorum-repro detect --csv mydata.csv --label-column is_anomaly
    quorum-repro compare --dataset power_plant    # Quorum vs classical baselines
    quorum-repro experiment table1 fig8 table2    # regenerate paper artifacts
    quorum-repro report --output report.md        # full evaluation report
    quorum-repro fit --dataset letter --save-model model.json   # train once
    quorum-repro score --model model.json --csv new.csv         # score many
    quorum-repro serve --model model.json --port 8765           # /v1 runtime
    quorum-repro serve --model a.json --models canary=b.json    # multi-model
    quorum-repro jobs submit --server http://127.0.0.1:8765 \\
        --kind replay_dataset --dataset letter --wait           # async job
    quorum-repro loadtest --model model.json --replicas 2 \\
        --concurrency 4 8 16 --report loadtest.json             # fleet perf
    quorum-repro fleet --model model.json --replicas 3          # self-healing


Every command prints GitHub-flavoured markdown so output can be pasted straight
into issues or EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.baselines import (
    HBOSDetector,
    IsolationForestDetector,
    KMeansDetector,
    LocalOutlierFactorDetector,
    PCAReconstructionDetector,
)
from repro.core.detector import QuorumDetector
from repro.data.dataset import Dataset
from repro.data.io import load_dataset_csv
from repro.data.registry import DATASET_SPECS, available_datasets, load_dataset
from repro.experiments.common import ExperimentSettings, markdown_table
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.fig10 import format_fig10, run_fig10
from repro.experiments.report import render_report, run_full_evaluation, write_report
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.core.parallel import available_executors
from repro.metrics.classification import evaluate_top_k
from repro.metrics.detection import detection_rate_curve
from repro.quantum.backend import available_simulation_backends

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="quorum-repro",
        description="Zero-training quantum anomaly detection (Quorum, DAC 2025) "
                    "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the Table I evaluation datasets")

    detect = subparsers.add_parser("detect", help="run Quorum on a dataset")
    _add_data_arguments(detect)
    _add_detector_arguments(detect)
    detect.add_argument("--top", type=int, default=10,
                        help="how many top-scoring samples to list")
    _add_executor_arguments(detect)

    compare = subparsers.add_parser("compare",
                                    help="compare Quorum against classical baselines")
    _add_data_arguments(compare)
    compare.add_argument("--ensembles", type=int, default=50)
    compare.add_argument("--seed", type=int, default=1234)
    _add_executor_arguments(compare)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate paper tables/figures (table1, fig8, fig9, "
                           "fig10, table2)")
    experiment.add_argument("artifacts", nargs="+",
                            choices=("table1", "fig8", "fig9", "fig10", "table2"),
                            help="which artifacts to regenerate")
    experiment.add_argument("--ensembles", type=int, default=60)
    experiment.add_argument("--seed", type=int, default=11)
    experiment.add_argument("--skip-noisy", action="store_true",
                            help="skip the expensive noisy runs in fig9")
    _add_executor_arguments(experiment)

    report = subparsers.add_parser("report", help="run the full evaluation sweep")
    report.add_argument("--ensembles", type=int, default=60)
    report.add_argument("--seed", type=int, default=11)
    report.add_argument("--skip-noisy", action="store_true")
    report.add_argument("--output", type=str, default=None,
                        help="write the markdown report to this path")
    report.add_argument("--json", type=str, default=None,
                        help="also dump machine-readable results to this path")
    _add_executor_arguments(report)

    fit = subparsers.add_parser(
        "fit", help="fit Quorum and persist the ensemble as a model artifact")
    _add_data_arguments(fit)
    _add_detector_arguments(fit)
    fit.add_argument("--save-model", type=str, required=True, metavar="PATH",
                     help="write the versioned model bundle to this path")
    _add_executor_arguments(fit)

    score = subparsers.add_parser(
        "score", help="score samples against a saved model without refitting")
    score.add_argument("--model", type=str, required=True, metavar="PATH",
                       help="model bundle written by `fit --save-model`")
    _add_data_arguments(score)
    score.add_argument("--mode", choices=("reference", "replay"),
                       default="reference",
                       help="'reference' scores against frozen fit-time bucket "
                            "statistics; 'replay' requires the exact training "
                            "set and reproduces the fit scores bitwise")
    score.add_argument("--top", type=int, default=10,
                       help="how many top-scoring samples to list")

    serve = subparsers.add_parser(
        "serve", help="serve saved model(s) over the stdlib-only /v1 HTTP API")
    serve.add_argument("--model", type=str, default=None, metavar="PATH",
                       help="default model bundle written by "
                            "`fit --save-model`")
    serve.add_argument("--models", type=str, nargs="+", default=None,
                       metavar="ID=PATH",
                       help="additional model bundles registered under "
                            "pinned ids, e.g. --models prod=a.json "
                            "canary=b.json")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 binds an ephemeral port (printed on "
                            "startup)")
    serve.add_argument("--max-batch-samples", type=int, default=512,
                       help="sample budget of one coalesced micro-batch")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="how long to wait for concurrent requests to "
                            "coalesce before executing a batch")
    serve.add_argument("--job-workers", type=int, default=2,
                       help="worker threads executing POST /v1/jobs work")
    serve.add_argument("--job-ttl", type=float, default=900.0,
                       metavar="SECONDS",
                       help="how long finished jobs (and results) stay "
                            "retrievable")
    serve.add_argument("--session-ttl", type=float, default=600.0,
                       metavar="SECONDS",
                       help="idle TTL of /v1/sessions")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.add_argument("--debug-hooks", action="store_true",
                       help="enable /v1/_debug fault-injection hooks "
                            "(chaos testing only; never in production)")

    fleet = subparsers.add_parser(
        "fleet",
        help="run a self-healing replica fleet behind a round-robin proxy")
    fleet.add_argument("--model", type=str, required=True, metavar="PATH",
                       help="model bundle every replica serves")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="how many serve subprocesses to supervise")
    fleet.add_argument("--host", type=str, default="127.0.0.1",
                       help="proxy listen host (replicas bind loopback)")
    fleet.add_argument("--port", type=int, default=0,
                       help="proxy TCP port; 0 binds an ephemeral port "
                            "(printed on startup)")
    fleet.add_argument("--target-rps", type=float, default=None,
                       help="size the fleet for this request rate instead of "
                            "--replicas (needs --per-replica-rps)")
    fleet.add_argument("--per-replica-rps", type=float, default=None,
                       help="measured single-replica capacity (the loadtest "
                            "saturation knee) used with --target-rps")
    fleet.add_argument("--max-batch-samples", type=int, default=512,
                       help="per-replica micro-batch sample budget")
    fleet.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="per-replica micro-batch coalescing window")
    fleet.add_argument("--health-interval", type=float, default=1.0,
                       metavar="SECONDS", help="health-loop cadence")
    fleet.add_argument("--probe-timeout", type=float, default=2.0,
                       metavar="SECONDS",
                       help="health-probe timeout (bounds hang detection)")
    fleet.add_argument("--eject-after", type=int, default=3,
                       help="consecutive probe failures before a replica "
                            "leaves the rotation")
    fleet.add_argument("--readmit-after", type=int, default=2,
                       help="consecutive probe successes before an ejected "
                            "replica returns")
    fleet.add_argument("--backoff-base", type=float, default=0.5,
                       metavar="SECONDS",
                       help="first restart delay after a crash (doubles per "
                            "consecutive crash)")
    fleet.add_argument("--backoff-max", type=float, default=30.0,
                       metavar="SECONDS", help="restart-delay ceiling")
    fleet.add_argument("--crash-loop-threshold", type=int, default=3,
                       help="crashes within the window that park a replica")
    fleet.add_argument("--crash-loop-window", type=float, default=30.0,
                       metavar="SECONDS", help="crash-loop detection window")
    fleet.add_argument("--status-interval", type=float, default=10.0,
                       metavar="SECONDS",
                       help="print a machine-readable JSON status line this "
                            "often (0 disables)")
    fleet.add_argument("--events", type=str, default=None, metavar="PATH",
                       help="append every flight-recorder event (spawns, "
                            "ejects, restarts, drains, crash-loop trips) to "
                            "this JSONL file as it happens; '-' streams "
                            "them to stderr on exit only")
    fleet.add_argument("--debug-hooks", action="store_true",
                       help="start replicas with /v1/_debug fault-injection "
                            "hooks enabled (chaos testing only)")

    loadtest = subparsers.add_parser(
        "loadtest",
        help="measure a serve replica fleet under closed-loop load")
    loadtest.add_argument("--model", type=str, required=True, metavar="PATH",
                          help="model bundle every replica serves")
    loadtest.add_argument("--replicas", type=int, default=1,
                          help="how many serve subprocesses to fan requests "
                               "across (K>1 also measures a 1-replica "
                               "baseline for scale-out efficiency)")
    loadtest.add_argument("--concurrency", type=int, nargs="+", default=[8],
                          metavar="N",
                          help="closed-loop worker counts to sweep")
    loadtest.add_argument("--duration", type=float, default=2.0,
                          metavar="SECONDS",
                          help="measured window per (window, replicas, "
                               "concurrency) combination")
    loadtest.add_argument("--warmup", type=float, default=0.25,
                          metavar="SECONDS",
                          help="excluded warmup ahead of each measurement")
    loadtest.add_argument("--mode", choices=("reference", "replay"),
                          default="reference",
                          help="'reference' sends synthetic probes; 'replay' "
                               "sends the training set (pass --dataset/--csv) "
                               "and doubles as a determinism check")
    loadtest.add_argument("--samples-per-request", type=int, default=4,
                          help="probe samples per request in reference mode")
    loadtest.add_argument("--batch-window-ms", type=float, nargs="+",
                          default=[2.0], metavar="MS",
                          help="replica micro-batch windows to sweep")
    loadtest.add_argument("--max-batch-samples", type=int, default=512,
                          help="replica micro-batch sample budget")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="probe-generation seed (reference mode)")
    loadtest.add_argument("--no-baseline", action="store_true",
                          help="skip the 1-replica baseline sweep (and the "
                               "scale-out efficiency it enables)")
    loadtest.add_argument("--report", type=str, default=None, metavar="PATH",
                          help="write the full JSON report here "
                               "('-' for stdout)")
    _add_data_arguments(loadtest, required=False)

    jobs = subparsers.add_parser(
        "jobs", help="drive async jobs on a running `quorum-repro serve`")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    submit = jobs_sub.add_parser(
        "submit", help="submit a job (POST /v1/jobs) and print its id")
    submit.add_argument("--server", type=str, required=True, metavar="URL",
                        help="base URL of a running server, e.g. "
                             "http://127.0.0.1:8765")
    submit.add_argument("--kind", choices=("replay_dataset", "score", "fit"),
                        required=True)
    submit.add_argument("--model-id", type=str, default=None,
                        help="target model id (default: the server's default "
                             "model)")
    _add_data_arguments(submit)
    submit.add_argument("--mode", choices=("reference", "replay"),
                        default="reference",
                        help="scoring mode for --kind score")
    submit.add_argument("--register-as", type=str, default=None,
                        help="model id the fitted artifact registers under "
                             "(--kind fit)")
    submit.add_argument("--save-path", type=str, default=None,
                        help="server-side path the fitted artifact is saved "
                             "to (--kind fit)")
    submit.add_argument("--params", type=str, default=None, metavar="JSON",
                        help="extra kind-specific params as a JSON object "
                             "(merged over the flag-derived ones)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its "
                             "result")
    submit.add_argument("--poll-interval", type=float, default=0.5,
                        metavar="SECONDS")

    for verb, help_text in (
            ("status", "print one job's status (GET /v1/jobs/{id})"),
            ("result", "print a finished job's result "
                       "(GET /v1/jobs/{id}/result)"),
            ("cancel", "cancel a job (DELETE /v1/jobs/{id})")):
        sub = jobs_sub.add_parser(verb, help=help_text)
        sub.add_argument("--server", type=str, required=True, metavar="URL")
        sub.add_argument("job_id", type=str)

    return parser


def _add_detector_arguments(parser: argparse.ArgumentParser) -> None:
    """Detector knobs shared by the commands that fit an ensemble."""
    parser.add_argument("--ensembles", type=int, default=50,
                        help="number of ensemble members (paper: 1000)")
    parser.add_argument("--shots", type=int, default=4096,
                        help="shots per circuit; 0 means exact probabilities")
    parser.add_argument("--qubits", type=int, default=3,
                        help="encoding qubits n (circuits use 2n+1 qubits)")
    parser.add_argument("--bucket-probability", type=float, default=0.75,
                        help="target probability of >=1 anomaly per bucket")
    parser.add_argument("--anomaly-fraction", type=float, default=None,
                        help="estimated anomaly fraction (default: 0.05)")
    parser.add_argument("--backend", choices=("analytic", "density_matrix",
                                              "statevector"),
                        default="analytic")
    parser.add_argument("--simulation-backend",
                        choices=available_simulation_backends(), default="numpy",
                        help="batched numerical kernel implementation the "
                             "engines run on")
    parser.add_argument("--noisy", action="store_true",
                        help="apply the Brisbane-like noise model "
                             "(requires --backend density_matrix)")
    parser.add_argument("--seed", type=int, default=1234)


def _build_detector(args: argparse.Namespace) -> QuorumDetector:
    """One QuorumDetector from the shared detector + executor flags."""
    return QuorumDetector(
        num_qubits=args.qubits,
        ensemble_groups=args.ensembles,
        shots=None if args.shots == 0 else args.shots,
        bucket_probability=args.bucket_probability,
        anomaly_fraction_estimate=args.anomaly_fraction,
        backend=args.backend,
        simulation_backend=args.simulation_backend,
        compile_circuits=not args.no_compile,
        noisy=args.noisy,
        seed=args.seed,
        executor=args.executor,
        n_jobs=_resolve_jobs(args),
        fused_members=args.fused_members,
    )


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", choices=available_executors(),
                        default="auto",
                        help="ensemble executor strategy; results are "
                             "bit-identical across strategies for a fixed seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="ensemble workers (default: 1, or the CPU count "
                             "when --executor names a parallel strategy)")
    parser.add_argument("--no-compile", action="store_true",
                        help="interpret circuits gate by gate instead of "
                             "executing cached compiled operator programs "
                             "(reference path; slower)")
    fused = parser.add_mutually_exclusive_group()
    fused.add_argument("--fused-members", dest="fused_members",
                       action="store_true", default=None,
                       help="force cross-member fused execution: members "
                            "sharing a circuit structure run as one stacked "
                            "batch per sweep step (bit-identical scores)")
    fused.add_argument("--no-fused-members", dest="fused_members",
                       action="store_false",
                       help="disable cross-member fusion even for "
                            "--executor fused (per-member reference "
                            "dispatch)")


def _resolve_jobs(args: argparse.Namespace) -> int:
    """One worker by default; naming a parallel executor implies a real pool."""
    if args.jobs is not None:
        return args.jobs
    if args.executor in ("threads", "processes"):
        return os.cpu_count() or 1
    return 1


def _add_data_arguments(parser: argparse.ArgumentParser,
                        required: bool = True) -> None:
    group = parser.add_mutually_exclusive_group(required=required)
    group.add_argument("--dataset", choices=available_datasets(),
                       help="one of the Table I datasets")
    group.add_argument("--csv", type=str, help="path to a CSV file")
    parser.add_argument("--label-column", type=str, default="label",
                        help="label column name for --csv input")
    parser.add_argument("--no-labels", action="store_true",
                        help="treat the --csv file as unlabeled (every column "
                             "is a feature; metrics that need labels are "
                             "skipped)")
    parser.add_argument("--data-seed", type=int, default=0,
                        help="generation seed for the synthetic Table I datasets")


def _load_data(args: argparse.Namespace) -> Dataset:
    if args.dataset:
        return load_dataset(args.dataset, seed=args.data_seed)
    label_column = None if args.no_labels else args.label_column
    return load_dataset_csv(args.csv, label_column=label_column)


def _load_data_checked(args: argparse.Namespace) -> Optional[Dataset]:
    """Like :func:`_load_data`, but turn load failures into a clean message.

    Returns ``None`` after printing to stderr; callers exit 2.
    """
    try:
        return _load_data(args)
    except (OSError, ValueError) as error:
        hint = ""
        if "label column" in str(error) and not args.no_labels:
            hint = " (for an unlabeled CSV, pass --no-labels)"
        print(f"cannot load data: {error}{hint}", file=sys.stderr)
        return None


def _command_datasets(_: argparse.Namespace) -> int:
    rows = [
        (spec.display_name, spec.name, spec.samples, spec.anomalies, spec.features,
         spec.bucket_probability)
        for spec in DATASET_SPECS.values()
    ]
    print(markdown_table(
        ["Dataset", "key", "Samples", "Anomalies", "Features", "Pr[anomaly/bucket]"],
        rows))
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    dataset = _load_data_checked(args)
    if dataset is None:
        return 2
    detector = _build_detector(args)
    detector.fit(dataset)
    scores = detector.anomaly_scores()

    print(f"Dataset: {dataset.name} ({dataset.num_samples} samples, "
          f"{dataset.num_features} features)")
    if dataset.num_anomalies > 0:
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        curve = detection_rate_curve(scores, dataset.labels)
        print(markdown_table(
            ["Precision", "Recall", "F1", "Accuracy", "DR@10%", "DR@20%"],
            [(f"{report.precision:.3f}", f"{report.recall:.3f}",
              f"{report.f1:.3f}", f"{report.accuracy:.3f}",
              f"{curve.rate_at(0.10):.2f}", f"{curve.rate_at(0.20):.2f}")]))
    _print_top_samples(scores, dataset, args.top)
    return 0


def _print_top_samples(scores, dataset: Dataset, top: int) -> None:
    """The shared 'Top N samples by anomaly score' table (detect and score)."""
    print(f"\nTop {top} samples by anomaly score:")
    rows = []
    for index in scores.argsort()[::-1][:top]:
        label = "anomaly" if dataset.labels[index] else "normal"
        rows.append((int(index), f"{scores[index]:.2f}",
                     label if dataset.num_anomalies else "?"))
    print(markdown_table(["sample", "score", "true label"], rows))


def _command_compare(args: argparse.Namespace) -> int:
    dataset = _load_data_checked(args)
    if dataset is None:
        return 2
    if dataset.num_anomalies == 0:
        print("the compare command needs labeled data to report metrics",
              file=sys.stderr)
        return 2
    detector = QuorumDetector(ensemble_groups=args.ensembles, shots=4096,
                              seed=args.seed,
                              anomaly_fraction_estimate=dataset.anomaly_fraction,
                              compile_circuits=not args.no_compile,
                              executor=args.executor, n_jobs=_resolve_jobs(args),
                              fused_members=args.fused_members)
    detector.fit(dataset)
    methods = {
        "Quorum (quantum)": detector.anomaly_scores(),
        "Isolation Forest": IsolationForestDetector(seed=args.seed).fit_scores(
            dataset.data),
        "Local Outlier Factor": LocalOutlierFactorDetector().fit_scores(dataset.data),
        "HBOS": HBOSDetector().fit_scores(dataset.data),
        "k-means distance": KMeansDetector(seed=args.seed).fit_scores(dataset.data),
        "PCA reconstruction": PCAReconstructionDetector().fit_scores(dataset.data),
    }
    rows = []
    for name, scores in methods.items():
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        rows.append((name, f"{report.precision:.3f}", f"{report.recall:.3f}",
                     f"{report.f1:.3f}"))
    print(markdown_table(["Method", "Precision", "Recall", "F1"], rows))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(ensemble_groups=args.ensembles, seed=args.seed,
                                  compile_circuits=not args.no_compile,
                                  executor=args.executor, n_jobs=_resolve_jobs(args),
                                  fused_members=args.fused_members)
    for artifact in args.artifacts:
        if artifact == "table1":
            print("\n## Table I\n")
            print(format_table1(run_table1(seed=settings.seed)))
        elif artifact == "fig8":
            print("\n## Fig. 8\n")
            print(format_fig8(run_fig8(settings)))
        elif artifact == "fig9":
            print("\n## Fig. 9\n")
            print(format_fig9(run_fig9(settings,
                                       include_noisy=not args.skip_noisy)))
        elif artifact == "fig10":
            print("\n## Fig. 10\n")
            print(format_fig10(run_fig10(settings)))
        elif artifact == "table2":
            print("\n## Table II\n")
            print(format_table2(run_table2(settings)))
    return 0


def _command_fit(args: argparse.Namespace) -> int:
    dataset = _load_data_checked(args)
    if dataset is None:
        return 2
    detector = _build_detector(args)
    detector.fit(dataset)
    path = detector.save_model(args.save_model)
    diagnostics = detector.diagnostics()
    print(f"model saved to {path}")
    print(markdown_table(
        ["Samples", "Members", "Runs", "Bucket size", "Backend", "Noisy"],
        [(diagnostics["num_samples"], args.ensembles, diagnostics["num_runs"],
          diagnostics["bucket_size"], args.backend, args.noisy)]))
    return 0


def _command_score(args: argparse.Namespace) -> int:
    from repro.serving.artifact import ArtifactError, load_model
    from repro.serving.scorer import OnlineScorer

    dataset = _load_data_checked(args)
    if dataset is None:
        return 2
    try:
        artifact = load_model(args.model)
    except ArtifactError as error:
        print(f"cannot load model: {error}", file=sys.stderr)
        return 2
    with OnlineScorer(artifact) as scorer:
        try:
            result = scorer.score(dataset.features_only(), mode=args.mode)
        except (ValueError, ArtifactError) as error:
            print(f"scoring failed: {error}", file=sys.stderr)
            return 2
    scores = result.scores
    print(f"Scored {result.num_samples} samples against "
          f"{len(artifact.members)} frozen members "
          f"({result.num_runs} runs, mode={result.mode})")
    _print_top_samples(scores, dataset, args.top)
    if dataset.num_anomalies > 0:
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        print(markdown_table(
            ["Precision", "Recall", "F1", "Accuracy"],
            [(f"{report.precision:.3f}", f"{report.recall:.3f}",
              f"{report.f1:.3f}", f"{report.accuracy:.3f}")]))
    return 0


def _parse_model_specs(specs: Optional[Sequence[str]]) -> dict:
    """``ID=PATH`` specs -> an ``{model_id: path}`` mapping (ids must be
    pinned so clients know how to address each model)."""
    models = {}
    for spec in specs or ():
        model_id, separator, path = spec.partition("=")
        if not separator:
            raise ValueError(
                f"--models entry {spec!r} must be ID=PATH (pin an id so "
                "clients can address the model)")
        if not model_id or not path:
            raise ValueError(f"--models entry {spec!r} has an empty id or "
                             "path")
        if model_id in models:
            raise ValueError(f"--models id {model_id!r} given twice")
        models[model_id] = path
    return models


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serving.models import ApiError
    from repro.serving.server import run_server

    def _terminate(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        models = _parse_model_specs(args.models)
        if args.model is None and not models:
            print("serve needs --model and/or --models", file=sys.stderr)
            return 2
        return run_server(
            args.model, host=args.host, port=args.port,
            quiet=not args.verbose,
            scorer_kwargs={
                "max_batch_samples": args.max_batch_samples,
                "batch_window_s": args.batch_window_ms / 1000.0,
            },
            models=models,
            job_workers=args.job_workers,
            job_ttl_s=args.job_ttl,
            session_ttl_s=args.session_ttl,
            debug_hooks=args.debug_hooks,
        )
    except KeyboardInterrupt:
        # SIGTERM landed before run_server's own handler could (mid-boot
        # drain from a supervisor): still a clean, deliberate shutdown.
        return 0
    except ApiError as error:
        # Registry load failures (bad bundle, duplicate id).
        print(f"cannot load model: {error.message}", file=sys.stderr)
        return 2
    except ValueError as error:
        # Invalid batching/worker/TTL flags or malformed --models specs.
        print(f"cannot start server: {error}", file=sys.stderr)
        return 2


def _command_fleet(args: argparse.Namespace) -> int:
    import json
    import signal
    import time

    from repro.serving.supervisor import FleetSupervisor, SupervisorPolicy
    from repro.serving.telemetry import FlightRecorder

    def _terminate(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    if (args.target_rps is None) != (args.per_replica_rps is None):
        print("--target-rps and --per-replica-rps go together",
              file=sys.stderr)
        return 2

    def _dump_events(supervisor) -> None:
        """Stream the flight-recorder ring to stderr (abnormal exit)."""
        recorder = getattr(supervisor, "recorder", None)
        if recorder is None:  # tests stub the supervisor without one
            return
        dumped = recorder.dump(sys.stderr)
        print(f"flight recorder: {dumped} event(s) above", file=sys.stderr)

    try:
        policy = SupervisorPolicy(
            health_interval_s=args.health_interval,
            probe_timeout_s=args.probe_timeout,
            eject_after=args.eject_after,
            readmit_after=args.readmit_after,
            backoff_base_s=args.backoff_base,
            backoff_max_s=args.backoff_max,
            crash_loop_threshold=args.crash_loop_threshold,
            crash_loop_window_s=args.crash_loop_window)
        recorder = None
        if args.events and args.events != "-":
            recorder = FlightRecorder(capacity=2048, sink=args.events)
        supervisor = FleetSupervisor(
            args.model, replicas=args.replicas, policy=policy,
            proxy_host=args.host, proxy_port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_batch_samples=args.max_batch_samples,
            debug_hooks=args.debug_hooks, recorder=recorder)
    except ValueError as error:
        print(f"cannot configure fleet: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot open --events sink: {error}", file=sys.stderr)
        return 2
    try:
        try:
            supervisor.start()
        except OSError as error:
            print(f"cannot start fleet: {error}", file=sys.stderr)
            return 2
        status = supervisor.status()
        if not any(slot["alive"] for slot in status["slots"]):
            # Every initial spawn failed outright (bad model path, broken
            # env): fail fast with the diagnosis instead of crash-looping.
            reasons = {slot["last_transition_reason"]
                       for slot in status["slots"]}
            print("cannot start fleet: no replica came up: "
                  + "; ".join(sorted(reasons)), file=sys.stderr)
            _dump_events(supervisor)
            return 2
        if args.target_rps is not None:
            chosen = supervisor.autoscale_to_target(args.target_rps,
                                                    args.per_replica_rps)
            print(f"autoscaled to {chosen} replicas for "
                  f"{args.target_rps:.0f} rps", flush=True)
        supervisor.start_health_loop()
        host, port = supervisor.proxy.address
        print(f"fleet serving {args.model} with {supervisor.target_replicas} "
              f"replicas on http://{host}:{port}", flush=True)
        while True:
            time.sleep(args.status_interval if args.status_interval > 0
                       else 3600.0)
            if args.status_interval > 0:
                print(json.dumps(supervisor.status(), sort_keys=True),
                      flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        exit_codes = supervisor.close()
        dirty = [code for code in exit_codes if code != 0]
        if dirty:
            print(f"warning: replica(s) exited non-zero on shutdown: "
                  f"{dirty}", file=sys.stderr)
        if args.events == "-" or dirty:
            # --events '-' asked for the ring on exit; a dirty shutdown
            # gets it regardless (the events are the post-mortem).
            _dump_events(supervisor)
    return 0


def _jobs_api(server: str, path: str, payload: Optional[dict] = None,
              method: Optional[str] = None) -> dict:
    """One JSON round trip against a running server's /v1 API."""
    import json
    import urllib.request

    url = server.rstrip("/") + path
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.load(response)


def _command_loadtest(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.serving.artifact import ArtifactError
    from repro.serving.loadtest import run_loadtest

    replay_samples = None
    if args.mode == "replay":
        if not (args.dataset or args.csv):
            print("replay mode sends the training set: pass --dataset or "
                  "--csv", file=sys.stderr)
            return 2
        dataset = _load_data_checked(args)
        if dataset is None:
            return 2
        replay_samples = dataset.features_only()
    try:
        report = run_loadtest(
            args.model,
            replicas=args.replicas,
            concurrencies=args.concurrency,
            duration_s=args.duration,
            mode=args.mode,
            samples_per_request=args.samples_per_request,
            batch_windows_ms=args.batch_window_ms,
            max_batch_samples=args.max_batch_samples,
            warmup_s=args.warmup,
            seed=args.seed,
            replay_samples=replay_samples,
            single_replica_baseline=not args.no_baseline)
    except (ArtifactError, ValueError, RuntimeError) as error:
        print(f"loadtest failed: {error}", file=sys.stderr)
        return 2
    _print_loadtest_summary(report)
    if args.report:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.report == "-":
            print(payload)
        else:
            Path(args.report).write_text(payload + "\n", encoding="utf-8")
            print(f"report written to {args.report}")
    if not report["replica_exits"]["clean"]:
        print("warning: replica(s) exited non-zero: "
              f"{report['replica_exits']['exit_codes']}", file=sys.stderr)
        return 1
    return 0


def _print_loadtest_summary(report: dict) -> None:
    rows = []
    for run in report["runs"]:
        latency = run["latency_ms"]
        rows.append((
            str(run["replicas"]),
            f"{run['batch_window_ms']:g}",
            str(run["concurrency"]),
            str(run["requests"]),
            str(run["errors"]),
            f"{run['throughput_rps']:.1f}",
            f"{latency['p50']:.1f}",
            f"{latency['p95']:.1f}",
            f"{latency['p99']:.1f}",
        ))
    print(markdown_table(
        ["replicas", "window ms", "conc", "requests", "errors", "rps",
         "p50 ms", "p95 ms", "p99 ms"], rows))
    scale_out = report["scale_out"]
    if scale_out is not None:
        print(f"\nscale-out 1->{scale_out['fleet_replicas']}: "
              f"{scale_out['throughput_single_rps']:.1f} -> "
              f"{scale_out['throughput_fleet_rps']:.1f} rps "
              f"(speedup {scale_out['speedup']:.2f}x, "
              f"efficiency {scale_out['efficiency']:.0%})")
    suggestion = report["suggestion"]
    print(f"suggested batching: --batch-window-ms "
          f"{suggestion['batch_window_ms']:g} --max-batch-samples "
          f"{suggestion['max_batch_samples']} (knee at concurrency "
          f"{suggestion['knee_concurrency']}, "
          f"{suggestion['peak_throughput_rps']:.1f} rps)")


def _command_jobs(args: argparse.Namespace) -> int:
    import json
    import time
    import urllib.error

    try:
        if args.jobs_command == "submit":
            params: dict = {}
            dataset = _load_data_checked(args)
            if dataset is None:
                return 2
            params["samples"] = dataset.features_only().tolist()
            if args.kind == "score":
                params["mode"] = args.mode
            if args.kind == "fit":
                if args.register_as:
                    params["register_as"] = args.register_as
                if args.save_path:
                    params["save_path"] = args.save_path
            if args.params:
                try:
                    extra = json.loads(args.params)
                except json.JSONDecodeError as error:
                    print(f"--params is not valid JSON: {error}",
                          file=sys.stderr)
                    return 2
                if not isinstance(extra, dict):
                    print("--params must be a JSON object", file=sys.stderr)
                    return 2
                params.update(extra)
            job = _jobs_api(args.server, "/v1/jobs",
                           {"kind": args.kind, "model_id": args.model_id,
                            "params": params})
            print(f"job {job['job_id']} submitted ({job['kind']}, "
                  f"status={job['status']})")
            if not args.wait:
                return 0
            while job["status"] in ("queued", "running"):
                time.sleep(args.poll_interval)
                job = _jobs_api(args.server, f"/v1/jobs/{job['job_id']}")
            print(f"job {job['job_id']} finished: {job['status']}")
            if job["status"] != "succeeded":
                print(json.dumps(job.get("error"), indent=2), file=sys.stderr)
                return 1
            result = _jobs_api(args.server,
                               f"/v1/jobs/{job['job_id']}/result")
            print(json.dumps(result["result"], indent=2))
            return 0

        if args.jobs_command == "status":
            print(json.dumps(
                _jobs_api(args.server, f"/v1/jobs/{args.job_id}"), indent=2))
            return 0
        if args.jobs_command == "result":
            payload = _jobs_api(args.server,
                                f"/v1/jobs/{args.job_id}/result")
            print(json.dumps(payload["result"], indent=2))
            return 0
        # cancel
        job = _jobs_api(args.server, f"/v1/jobs/{args.job_id}",
                        method="DELETE")
        print(f"job {job['job_id']}: {job['status']}")
        return 0
    except urllib.error.HTTPError as error:
        try:
            envelope = json.load(error)["error"]
            print(f"server error [{envelope['code']}]: "
                  f"{envelope['message']}", file=sys.stderr)
        except Exception:
            print(f"server error: HTTP {error.code}", file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError) as error:
        print(f"cannot reach server {args.server}: {error}", file=sys.stderr)
        return 2


def _command_report(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(ensemble_groups=args.ensembles, seed=args.seed,
                                  compile_circuits=not args.no_compile,
                                  executor=args.executor, n_jobs=_resolve_jobs(args),
                                  fused_members=args.fused_members)
    report = run_full_evaluation(settings, include_noisy=not args.skip_noisy)
    if args.output:
        path = write_report(report, args.output, json_path=args.json)
        print(f"report written to {path}")
    else:
        print(render_report(report))
    return 0


_COMMANDS = {
    "datasets": _command_datasets,
    "detect": _command_detect,
    "compare": _command_compare,
    "experiment": _command_experiment,
    "report": _command_report,
    "fit": _command_fit,
    "score": _command_score,
    "serve": _command_serve,
    "fleet": _command_fleet,
    "loadtest": _command_loadtest,
    "jobs": _command_jobs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
