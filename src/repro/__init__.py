"""Reproduction of "Quorum: Zero-Training Unsupervised Anomaly Detection using
Quantum Autoencoders" (DAC 2025).

The top-level namespace re-exports the objects most users need:

* :class:`QuorumDetector` / :class:`QuorumConfig` -- the paper's contribution.
* :func:`load_dataset` / :class:`Dataset` -- the four Table I evaluation datasets
  (synthetic surrogates; see DESIGN.md).
* The evaluation metrics used in Figs. 8-10.
* The quantum substrate lives under :mod:`repro.quantum`, the baselines under
  :mod:`repro.baselines`, and the per-figure experiment runners under
  :mod:`repro.experiments`.
"""

from repro.core.config import QuorumConfig
from repro.core.detector import QuorumDetector
from repro.core.scoring import AnomalyScores
from repro.data.dataset import Dataset
from repro.data.registry import DATASET_SPECS, available_datasets, load_dataset
from repro.metrics.classification import ClassificationReport, evaluate_flags, evaluate_top_k
from repro.metrics.detection import DetectionCurve, detection_rate_curve

__version__ = "1.0.0"

__all__ = [
    "QuorumConfig",
    "QuorumDetector",
    "AnomalyScores",
    "Dataset",
    "DATASET_SPECS",
    "available_datasets",
    "load_dataset",
    "ClassificationReport",
    "evaluate_flags",
    "evaluate_top_k",
    "DetectionCurve",
    "detection_rate_curve",
    "__version__",
]
