"""Replica-fleet smoke test: ``fit`` -> ``loadtest --replicas 2`` -> report.

Run with::

    PYTHONPATH=src python examples/loadtest_smoke.py

Fits a small ensemble, persists it, then runs the real ``quorum-repro
loadtest`` CLI in a subprocess: two ``serve`` replicas on ephemeral ports
behind the round-robin proxy, a short closed-loop concurrency sweep, and a
JSON report.  Asserts the report is well-formed (throughput, latency
percentiles, per-replica request distribution, 1->2 scale-out efficiency,
batching suggestion) and that every replica subprocess exited cleanly.

CI runs this script as the fleet smoke test, so it fails loudly (non-zero
exit) on any loadtest, proxy, or replica-lifecycle regression.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import QuorumDetector
from repro.serving import save_model


def main() -> int:
    rng = np.random.default_rng(12)
    data = rng.normal(size=(16, 4))
    detector = QuorumDetector(ensemble_groups=2, seed=5, shots=256)
    detector.fit(data)

    with tempfile.TemporaryDirectory() as workdir:
        model_path = save_model(detector, Path(workdir) / "model.json")
        report_path = Path(workdir) / "loadtest.json"
        print("== quorum-repro loadtest: 2 replicas, short sweep ==")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "loadtest",
             "--model", str(model_path),
             "--replicas", "2", "--concurrency", "2", "4",
             "--duration", "0.6", "--warmup", "0.15",
             "--samples-per-request", "2",
             "--report", str(report_path)],
            timeout=600)
        assert completed.returncode == 0, \
            f"loadtest exited {completed.returncode}"

        report = json.loads(report_path.read_text())

    # Well-formed report: every documented section is present and sane.
    assert report["version"] == 1
    assert report["config"]["replicas"] == 2
    # 1 batch window x {1, 2} replicas x 2 concurrency levels = 4 runs.
    assert len(report["runs"]) == 4
    for run in report["runs"]:
        assert run["requests"] > 0, run
        assert run["errors"] == 0, run
        assert run["throughput_rps"] > 0, run
        assert {"p50", "p95", "p99"} <= set(run["latency_ms"]), run
        assert sum(run["per_replica_requests"].values()) >= run["requests"]
    fleet_runs = [run for run in report["runs"] if run["replicas"] == 2]
    assert all(count > 0
               for run in fleet_runs
               for count in run["per_replica_requests"].values()), \
        "round-robin left a replica idle"

    scale_out = report["scale_out"]
    assert scale_out["fleet_replicas"] == 2
    assert scale_out["throughput_fleet_rps"] > 0
    assert 0.0 < scale_out["efficiency"] <= 1.5  # sanity, not a perf gate

    suggestion = report["suggestion"]
    assert suggestion["max_batch_samples"] >= 32
    assert suggestion["batch_window_ms"] in report["config"][
        "batch_windows_ms"]

    exits = report["replica_exits"]
    assert exits["clean"], f"replica exit codes: {exits['exit_codes']}"

    print(f"OK: {len(report['runs'])} runs, scale-out efficiency "
          f"{scale_out['efficiency']:.0%}, all "
          f"{len(exits['exit_codes'])} replica processes exited 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
