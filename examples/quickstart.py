"""Quickstart: detect anomalies in a dataset with zero training.

Run with::

    python examples/quickstart.py

Loads the power-plant dataset (Table I), runs the Quorum detector, and prints the
classification metrics plus the top-scoring samples.
"""

from repro import QuorumDetector, evaluate_top_k, load_dataset


def main() -> None:
    # 1. Load a dataset.  Labels are only used to evaluate at the end; the
    #    detector itself never sees them.
    dataset = load_dataset("power_plant", seed=0)
    print(f"Loaded {dataset.name}: {dataset.num_samples} samples, "
          f"{dataset.num_features} features, {dataset.num_anomalies} true anomalies")

    # 2. Configure and run Quorum.  No training happens anywhere: each ensemble
    #    member just applies random quantum transformations and a SWAP test.
    detector = QuorumDetector(
        ensemble_groups=60,          # paper uses 1,000; 60 is plenty for a demo
        shots=4096,                  # measurement shots per circuit
        bucket_probability=0.75,     # Table I's target for this dataset
        anomaly_fraction_estimate=0.03,
        seed=7,
    )
    detector.fit(dataset)

    # 3. Inspect the results.
    scores = detector.anomaly_scores()
    report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
    print("\nDetection quality (flagging as many samples as there are anomalies):")
    print(f"  precision = {report.precision:.3f}")
    print(f"  recall    = {report.recall:.3f}")
    print(f"  F1        = {report.f1:.3f}")
    print(f"  accuracy  = {report.accuracy:.3f}")

    print("\nTop 10 most anomalous samples (index, score, true label):")
    for index in detector.ranking()[:10]:
        label = "ANOMALY" if dataset.labels[index] else "normal"
        print(f"  #{index:4d}  score={scores[index]:8.2f}  {label}")

    print("\nRun diagnostics:")
    for key, value in detector.diagnostics().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
