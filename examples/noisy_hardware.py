"""Noise resilience: running Quorum on a Brisbane-like noisy simulator.

Run with::

    python examples/noisy_hardware.py

Reproduces the paper's Fig. 9 noise experiment in miniature: the same (subsampled)
dataset is scored with the exact analytic engine and with the density-matrix
simulator carrying IBM-Brisbane-style gate/readout noise, and the detection-rate
curves are compared.  Noisy circuit simulation is expensive, so this example uses
a small stratified subsample and few ensemble members.
"""

from repro import QuorumDetector, detection_rate_curve, load_dataset
from repro.experiments.common import stratified_subsample
from repro.quantum.backends import FakeBrisbane


def main() -> None:
    full = load_dataset("breast_cancer", seed=0)
    dataset = stratified_subsample(full, 90, seed=1)
    print(f"Subsampled {dataset.num_samples} of {full.num_samples} samples "
          f"({dataset.num_anomalies} anomalies) for the noisy comparison")

    backend = FakeBrisbane()
    print("Noise model (median Brisbane calibration, as quoted in the paper):")
    print(f"  T1 = {backend.t1_us} us, T2 = {backend.t2_us} us")
    print(f"  1q gate error = {backend.single_qubit_gate_error}")
    print(f"  2q gate error = {backend.two_qubit_gate_error}")
    print(f"  readout error = {backend.readout_error}\n")

    common = dict(ensemble_groups=6, shots=4096, seed=3,
                  anomaly_fraction_estimate=dataset.anomaly_fraction,
                  bucket_probability=0.75)

    ideal = QuorumDetector(backend="analytic", **common)
    ideal.fit(dataset)
    ideal_curve = detection_rate_curve(ideal.anomaly_scores(), dataset.labels)

    noisy = QuorumDetector(backend="density_matrix", noisy=True, **common)
    noisy.fit(dataset)
    noisy_curve = detection_rate_curve(noisy.anomaly_scores(), dataset.labels)

    print("Fraction of dataset inspected -> fraction of anomalies detected")
    print(f"{'fraction':>10s}  {'noiseless':>10s}  {'Brisbane noise':>14s}")
    for fraction in (0.05, 0.10, 0.20, 0.30, 0.50):
        print(f"{fraction:10.0%}  {ideal_curve.rate_at(fraction):10.1%}  "
              f"{noisy_curve.rate_at(fraction):14.1%}")
    print("\nQuorum's ensemble averaging makes the ranking robust to realistic "
          "gate and readout noise -- the two curves should closely track each "
          "other, as the paper reports.")


if __name__ == "__main__":
    main()
