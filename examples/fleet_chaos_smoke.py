"""Self-healing fleet smoke test: SIGKILL a replica, watch the fleet heal.

Run with::

    PYTHONPATH=src python examples/fleet_chaos_smoke.py

Fits a small ensemble, starts a :class:`FleetSupervisor` with three real
``quorum-repro serve`` replica subprocesses behind the round-robin proxy,
and then misbehaves on purpose:

1. scores the training set through the proxy (``mode="replay"``);
2. SIGKILLs one replica while idempotent GET load is running;
3. waits for the supervisor to detect the crash, back off, respawn, and
   converge back to 3 healthy replicas;
4. re-scores and asserts **bitwise** parity -- replica churn must never
   change what the model computes;
5. replays the supervisor's flight recorder and asserts the whole incident
   is there for slot 0, in order: eject after the SIGKILL, respawn, and the
   transition back to healthy;
6. drains the fleet and asserts every surviving replica exited 0.

CI runs this script as the chaos smoke test, so it fails loudly (non-zero
exit) on any supervisor, proxy-failover, or drain regression.
"""

import json
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro import QuorumDetector
from repro.serving import FleetSupervisor, SupervisorPolicy, save_model
from repro.serving.faults import FaultInjector


def _get_json(url):
    with urllib.request.urlopen(url, timeout=15.0) as response:
        return json.load(response)


def _post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=60.0) as response:
        return json.load(response)


def main() -> int:
    rng = np.random.default_rng(29)
    data = rng.normal(size=(20, 4))
    detector = QuorumDetector(ensemble_groups=2, seed=9, shots=256)
    detector.fit(data)

    policy = SupervisorPolicy(health_interval_s=0.25, probe_timeout_s=1.0,
                              eject_after=2, readmit_after=2,
                              backoff_base_s=0.3, backoff_max_s=2.0)
    ok = errors = 0
    counter_lock = threading.Lock()
    stop = threading.Event()

    with tempfile.TemporaryDirectory() as workdir:
        model_path = save_model(detector, Path(workdir) / "model.json")
        supervisor = FleetSupervisor(model_path, replicas=3, policy=policy,
                                     backend_timeout_s=5.0,
                                     batch_window_ms=1.0)
        print("== fleet chaos smoke: 3 replicas, SIGKILL one, self-heal ==")
        supervisor.start()
        supervisor.start_health_loop()
        assert supervisor.wait_for_healthy(3, timeout_s=120.0), \
            supervisor.status()
        base_url = "http://%s:%d" % supervisor.proxy.address
        print(f"fleet healthy behind {base_url}")

        def pound():
            nonlocal ok, errors
            while not stop.is_set():
                try:
                    healthy = _get_json(base_url + "/v1/healthz")
                    good = healthy.get("status") == "ok"
                except Exception:  # noqa: BLE001 - counted, not masked
                    good = False
                with counter_lock:
                    if good:
                        ok += 1
                    else:
                        errors += 1

        try:
            default_model = _get_json(base_url + "/v1/healthz")[
                "default_model"]
            score_url = f"{base_url}/v1/models/{default_model}/score"
            payload = {"samples": data.tolist(), "mode": "replay"}
            before = _post_json(score_url, payload)["scores"]

            workers = [threading.Thread(target=pound, daemon=True)
                       for _ in range(4)]
            for worker in workers:
                worker.start()
            time.sleep(1.0)

            victim = supervisor.status()["slots"][0]
            print(f"SIGKILL replica slot 0 (pid {victim['pid']})")
            FaultInjector().kill(victim["pid"])

            # Wait for detection (the slot leaves healthy) before waiting
            # for recovery, or stale pre-tick state would satisfy the wait.
            deadline = time.monotonic() + 30.0
            while supervisor.healthy_count() >= 3:
                assert time.monotonic() < deadline, supervisor.status()
                time.sleep(0.05)
            assert supervisor.wait_for_healthy(3, timeout_s=60.0), \
                supervisor.status()
            time.sleep(1.0)
            stop.set()
            for worker in workers:
                worker.join(timeout=30.0)

            recovered = supervisor.status()["slots"][0]
            assert recovered["restarts"] >= 1, recovered
            assert recovered["pid"] != victim["pid"], recovered
            print(f"fleet healed: slot 0 respawned as pid "
                  f"{recovered['pid']} after "
                  f"{recovered['restarts']} restart(s)")

            after = _post_json(score_url, payload)["scores"]
            assert after == before, "replica churn changed the scores"
            print("bitwise replay parity through the healed fleet: OK")

            total = ok + errors
            rate = ok / total if total else 1.0
            assert total > 50, f"load generator barely ran ({total} requests)"
            assert rate >= 0.99, \
                f"success rate {rate:.2%} ({errors}/{total} failed)"
            print(f"idempotent load during the crash: {ok}/{total} OK "
                  f"({rate:.2%})")

            # The flight recorder replays the incident: slot 0 was ejected
            # after the SIGKILL, respawned, and probed back to healthy --
            # as ordered events, correlated by slot id.
            slot_events = [event for event in supervisor.events()
                           if event.get("slot") == 0]
            kinds = [(event["kind"], event.get("to_state"))
                     for event in slot_events]
            eject_at = kinds.index(("transition", "ejected"))
            spawn_at = next(i for i, event in enumerate(slot_events)
                            if i > eject_at and event["kind"] == "spawn"
                            and event["pid"] == recovered["pid"])
            heal_at = kinds.index(("transition", "healthy"), spawn_at)
            seqs = [slot_events[i]["seq"]
                    for i in (eject_at, spawn_at, heal_at)]
            assert seqs == sorted(seqs), slot_events
            print(f"flight recorder: eject (seq {seqs[0]}) -> respawn "
                  f"(seq {seqs[1]}, pid {recovered['pid']}) -> healthy "
                  f"(seq {seqs[2]}) for slot 0")

            # Live telemetry made it into the status document too: the
            # pounded fleet shows per-replica request rates and latency.
            backend_stats = supervisor.status()["proxy"]["backend_stats"]
            assert any(stats["requests"] > 0 and stats["p95_ms"] is not None
                       for stats in backend_stats.values()), backend_stats
        finally:
            stop.set()
            exit_codes = supervisor.close()

    dirty = [code for code in exit_codes if code != 0]
    assert not dirty, f"replicas exited non-zero on drain: {dirty}"
    print(f"OK: fleet healed after SIGKILL; all {len(exit_codes)} surviving "
          f"replicas drained with exit 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
