"""Serving round trip: ``fit --save-model`` -> ``serve`` -> ``POST /score``.

Run with::

    PYTHONPATH=src python examples/serve_roundtrip.py

Fits a small ensemble, persists it as a versioned model artifact, boots the
real ``quorum-repro serve`` CLI in a subprocess on an ephemeral localhost
port, and drives the HTTP API with nothing but the standard library:

1. ``GET /healthz``  -- liveness + model identity,
2. ``POST /score``   -- score three unseen samples,
3. ``POST /score`` with ``"mode": "replay"`` -- bit-identical refit-free
   reproduction of the training-set scores,
4. ``GET /model``    -- operator diagnostics (compiler cache counters).

CI runs this script as the serving smoke test, so it fails loudly (non-zero
exit) on any schema or lifecycle regression.
"""

import json
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro import QuorumDetector, load_dataset
from repro.serving import load_model


def _post_json(url: str, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get_json(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="quorum-serve-"))
    model_path = workdir / "model.json"

    # 1. Train once: fit the ensemble and persist it as a versioned artifact.
    dataset = load_dataset("power_plant", seed=0)
    detector = QuorumDetector(ensemble_groups=12, shots=2048, seed=7,
                              anomaly_fraction_estimate=0.03)
    detector.fit(dataset)
    expected_scores = detector.anomaly_scores()
    detector.save_model(model_path)
    artifact = load_model(model_path)
    print(f"model saved to {model_path} "
          f"(schema v{artifact.schema_version}, "
          f"{len(artifact.members)} members)")

    # 2. Serve: boot the real CLI on an ephemeral port (port 0) and scrape
    #    the bound port from its startup line.
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--model", str(model_path), "--port", "0"],
        stdout=subprocess.PIPE, text=True)
    try:
        startup = server.stdout.readline().strip()
        base_url = startup.split(" on ")[-1]
        print(f"server: {startup}")

        # 3. Score many: drive the JSON API with the standard library only.
        health = _get_json(base_url + "/healthz")
        assert health["status"] == "ok", health
        assert health["schema_version"] == artifact.schema_version, health

        unseen = dataset.features_only()[:3]
        response = _post_json(base_url + "/score",
                              {"samples": unseen.tolist()})
        assert response["num_samples"] == 3, response
        assert len(response["scores"]) == 3, response
        assert response["mode"] == "reference", response
        print(f"POST /score -> {[round(s, 2) for s in response['scores']]} "
              f"({response['num_runs']} runs)")

        replay = _post_json(base_url + "/score",
                            {"samples": dataset.features_only().tolist(),
                             "mode": "replay"})
        replayed = np.asarray(replay["scores"])
        assert np.array_equal(replayed, expected_scores), (
            "replay scores diverged from the in-process fit")
        print(f"POST /score mode=replay -> bitwise identical to fit "
              f"({replayed.shape[0]} samples)")

        diagnostics = _get_json(base_url + "/model")
        cache = diagnostics["compiler_cache"]
        assert {"compiles", "hits", "misses"} <= set(cache), diagnostics
        print(f"GET /model -> compiler cache: {cache['compiles']} compiles, "
              f"{cache['hits']} hits over "
              f"{diagnostics['serving']['requests']} requests")
    finally:
        # 4. Shut down cleanly: SIGTERM closes the socket and the scorer.
        server.terminate()
        server.wait(timeout=15)
    assert server.returncode == 0, f"server exited with {server.returncode}"
    print("server shut down cleanly")


if __name__ == "__main__":
    main()
