"""Serving round trip: ``fit --save-model`` -> ``serve`` -> ``POST /score``.

Run with::

    PYTHONPATH=src python examples/serve_roundtrip.py

Fits a small ensemble, persists it as a versioned model artifact, boots the
real ``quorum-repro serve`` CLI in a subprocess on an ephemeral localhost
port, and drives the HTTP API with nothing but the standard library:

1. ``GET /healthz``  -- liveness + model identity (legacy alias),
2. ``POST /score``   -- score three unseen samples (legacy alias),
3. ``POST /score`` with ``"mode": "replay"`` -- bit-identical refit-free
   reproduction of the training-set scores,
4. ``GET /model``    -- operator diagnostics (compiler cache counters),
5. ``GET /v1/healthz`` + ``POST /v1/models/{id}/score`` -- the versioned API
   serves the same model under its registry id,
6. ``POST /v1/jobs`` (``replay_dataset``) -- submit, poll, and fetch an async
   replay job whose result is again bitwise identical to the fit,
7. ``GET /v1/metrics`` -- the telemetry scrape (JSON and Prometheus text)
   shows non-zero request counters and per-stage latency histograms for all
   of the traffic above.

CI runs this script as the serving smoke test, so it fails loudly (non-zero
exit) on any schema or lifecycle regression.
"""

import json
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro import QuorumDetector, load_dataset
from repro.serving import load_model


def _post_json(url: str, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get_json(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="quorum-serve-"))
    model_path = workdir / "model.json"

    # 1. Train once: fit the ensemble and persist it as a versioned artifact.
    dataset = load_dataset("power_plant", seed=0)
    detector = QuorumDetector(ensemble_groups=12, shots=2048, seed=7,
                              anomaly_fraction_estimate=0.03)
    detector.fit(dataset)
    expected_scores = detector.anomaly_scores()
    detector.save_model(model_path)
    artifact = load_model(model_path)
    print(f"model saved to {model_path} "
          f"(schema v{artifact.schema_version}, "
          f"{len(artifact.members)} members)")

    # 2. Serve: boot the real CLI on an ephemeral port (port 0) and scrape
    #    the bound port from its startup line.
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--model", str(model_path), "--port", "0"],
        stdout=subprocess.PIPE, text=True)
    try:
        startup = server.stdout.readline().strip()
        base_url = startup.split(" on ")[-1]
        print(f"server: {startup}")

        # 3. Score many: drive the JSON API with the standard library only.
        health = _get_json(base_url + "/healthz")
        assert health["status"] == "ok", health
        assert health["schema_version"] == artifact.schema_version, health

        unseen = dataset.features_only()[:3]
        response = _post_json(base_url + "/score",
                              {"samples": unseen.tolist()})
        assert response["num_samples"] == 3, response
        assert len(response["scores"]) == 3, response
        assert response["mode"] == "reference", response
        print(f"POST /score -> {[round(s, 2) for s in response['scores']]} "
              f"({response['num_runs']} runs)")

        replay = _post_json(base_url + "/score",
                            {"samples": dataset.features_only().tolist(),
                             "mode": "replay"})
        replayed = np.asarray(replay["scores"])
        assert np.array_equal(replayed, expected_scores), (
            "replay scores diverged from the in-process fit")
        print(f"POST /score mode=replay -> bitwise identical to fit "
              f"({replayed.shape[0]} samples)")

        diagnostics = _get_json(base_url + "/model")
        cache = diagnostics["compiler_cache"]
        assert {"compiles", "hits", "misses"} <= set(cache), diagnostics
        print(f"GET /model -> compiler cache: {cache['compiles']} compiles, "
              f"{cache['hits']} hits over "
              f"{diagnostics['serving']['requests']} requests")

        # 4. The versioned API: same model, addressed by its registry id.
        v1_health = _get_json(base_url + "/v1/healthz")
        assert v1_health["api_version"] == "v1", v1_health
        model_id = v1_health["default_model"]
        v1_score = _post_json(f"{base_url}/v1/models/{model_id}/score",
                              {"samples": unseen.tolist()})
        assert v1_score["scores"] == response["scores"], v1_score
        assert v1_score["model_id"] == model_id, v1_score
        print(f"POST /v1/models/{model_id}/score -> matches legacy /score")

        # 5. Async replay job: submit, poll to completion, fetch the result.
        job = _post_json(base_url + "/v1/jobs",
                         {"kind": "replay_dataset",
                          "params": {"samples":
                                     dataset.features_only().tolist()}})
        job_id = job["job_id"]
        deadline = time.monotonic() + 300
        while job["status"] in ("queued", "running"):
            assert time.monotonic() < deadline, f"job {job_id} stalled"
            time.sleep(0.1)
            job = _get_json(f"{base_url}/v1/jobs/{job_id}")
        assert job["status"] == "succeeded", job
        result = _get_json(f"{base_url}/v1/jobs/{job_id}/result")
        job_scores = np.asarray(result["result"]["scores"])
        assert np.array_equal(job_scores, expected_scores), (
            "async replay job diverged from the in-process fit")
        print(f"POST /v1/jobs replay_dataset -> job {job_id[:8]}... "
              f"succeeded, bitwise identical to fit")
        assert job["queued_s"] is not None and job["run_s"] is not None, job

        # 6. Telemetry: everything above left its mark on /v1/metrics.
        metrics = _get_json(base_url + "/v1/metrics")
        requests_total = sum(
            entry["value"]
            for entry in metrics["counters"]["http_requests_total"])
        assert requests_total > 0, metrics["counters"]
        scoring = metrics["histograms"]["scoring_engine_seconds"]
        queue_wait = metrics["histograms"]["scoring_queue_wait_seconds"]
        assert scoring["count"] > 0 and queue_wait["count"] > 0, (
            metrics["histograms"])
        assert metrics["counters"]["jobs_finished_total"], metrics["counters"]
        prometheus = urllib.request.urlopen(
            base_url + "/v1/metrics?format=prometheus", timeout=30).read()
        assert b"# TYPE http_requests_total counter" in prometheus
        assert b"http_request_seconds_bucket{le=" in prometheus
        print(f"GET /v1/metrics -> {int(requests_total)} requests counted, "
              f"{scoring['count']} engine spans "
              f"(p95 {scoring['p95'] * 1e3:.1f} ms), "
              f"Prometheus exposition OK")
    finally:
        # 4. Shut down cleanly: SIGTERM closes the socket and the scorer.
        server.terminate()
        server.wait(timeout=15)
    assert server.returncode == 0, f"server exited with {server.returncode}"
    print("server shut down cleanly")


if __name__ == "__main__":
    main()
