"""Working with the quantum substrate directly.

Run with::

    python examples/custom_quantum_circuits.py

The reproduction ships its own Qiskit-free quantum stack.  This example builds the
paper's 7-qubit autoencoder + SWAP-test circuit by hand, simulates it with both
engines, lowers it to IBM's basis gates, and shows how the compression level (the
number of qubits reset) drives the SWAP-test statistics.
"""

import numpy as np

from repro.algorithms.ansatz import RandomAutoencoderAnsatz
from repro.algorithms.autoencoder import analytic_swap_test_p1, build_autoencoder_circuit
from repro.encoding.amplitude import amplitudes_from_features
from repro.quantum.backends import FakeBrisbane
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.transpiler import transpile


def main() -> None:
    # Encode one 7-feature sample into 3 qubits (plus the overflow state).
    rng = np.random.default_rng(0)
    features = rng.uniform(0.0, 1.0 / np.sqrt(7), size=7)
    amplitudes = amplitudes_from_features(features, num_qubits=3)
    print(f"Encoded amplitudes: {np.round(amplitudes, 3)}")

    # Build the full Quorum circuit (Fig. 2 / Fig. 6): random encoder, partial
    # reset, mirrored decoder, SWAP test against the untouched reference register.
    ansatz = RandomAutoencoderAnsatz(num_qubits=3, num_layers=2, seed=42)
    circuit = build_autoencoder_circuit(amplitudes, ansatz, compression_level=1)
    print(f"\nCircuit: {circuit.num_qubits} qubits, depth {circuit.depth()}, "
          f"ops {circuit.count_ops()}")

    # Simulate with the exact density-matrix engine and with sampled trajectories.
    density = DensityMatrixSimulator(seed=1).run(circuit, shots=4096)
    trajectories = StatevectorSimulator(seed=1, max_trajectories=64).run(circuit,
                                                                         shots=4096)
    print("\nSWAP-test P(ancilla = 1):")
    print(f"  density matrix (exact + shots): {density.probability('1'):.4f}")
    print(f"  statevector trajectories:       {trajectories.probability('1'):.4f}")
    print("  analytic fast path:             "
          f"{analytic_swap_test_p1(amplitudes, ansatz, 1):.4f}")

    # Compression level sweep: resetting more qubits discards more information,
    # so the reconstructed state drifts further from the reference.
    print("\nCompression sweep (qubits reset -> analytic P(1)):")
    for level in range(0, 4):
        p1 = analytic_swap_test_p1(amplitudes, ansatz, level)
        print(f"  reset {level} qubit(s): P(1) = {p1:.4f}")

    # Lower the gate-level version of the circuit to IBM's native basis.
    gate_level = build_autoencoder_circuit(amplitudes, ansatz, 1,
                                           gate_level_encoding=True)
    lowered = transpile(gate_level, basis=FakeBrisbane().basis_gates)
    print(f"\nTranspiled to {FakeBrisbane().basis_gates}: "
          f"{lowered.size()} gates, depth {lowered.depth()}, "
          f"{lowered.two_qubit_gate_count()} two-qubit gates")


if __name__ == "__main__":
    main()
