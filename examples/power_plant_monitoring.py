"""Power-grid / industrial monitoring scenario (the energy use case from the intro).

Run with::

    python examples/power_plant_monitoring.py

Uses the combined-cycle power-plant dataset (Table I), compares Quorum against
three classical unsupervised baselines, and prints the detection-rate curve the
paper plots in Fig. 9.
"""

from repro import QuorumDetector, detection_rate_curve, evaluate_top_k, load_dataset
from repro.baselines import (
    AutoencoderDetector,
    KMeansDetector,
    PCAReconstructionDetector,
)


def main() -> None:
    dataset = load_dataset("power_plant", seed=0)
    print(f"Monitoring {dataset.num_samples} operating points of a combined-cycle "
          f"power plant; {dataset.num_anomalies} injected implausible readings")
    print(f"Sensors: {dataset.feature_names}\n")

    detector = QuorumDetector(ensemble_groups=60, shots=4096, seed=5,
                              bucket_probability=0.75,
                              anomaly_fraction_estimate=0.03)
    detector.fit(dataset)
    quorum_scores = detector.anomaly_scores()

    baselines = {
        "k-means distance": KMeansDetector(num_clusters=6, seed=5),
        "PCA reconstruction": PCAReconstructionDetector(num_components=2),
        "classical autoencoder": AutoencoderDetector(epochs=120, bottleneck=2,
                                                     seed=5),
    }

    print(f"{'Method':24s}  {'precision':>9s}  {'recall':>7s}  {'F1':>6s}")
    report = evaluate_top_k(quorum_scores, dataset.labels, dataset.num_anomalies)
    print(f"{'Quorum (quantum)':24s}  {report.precision:9.3f}  "
          f"{report.recall:7.3f}  {report.f1:6.3f}")
    for name, baseline in baselines.items():
        scores = baseline.fit_scores(dataset.data)
        report = evaluate_top_k(scores, dataset.labels, dataset.num_anomalies)
        print(f"{name:24s}  {report.precision:9.3f}  {report.recall:7.3f}  "
              f"{report.f1:6.3f}")

    curve = detection_rate_curve(quorum_scores, dataset.labels)
    print("\nQuorum detection-rate curve (Fig. 9 style):")
    for fraction in (0.02, 0.05, 0.10, 0.20, 0.50):
        print(f"  inspecting top {fraction:4.0%} of samples -> "
              f"{curve.rate_at(fraction):5.1%} of anomalies found")


if __name__ == "__main__":
    main()
