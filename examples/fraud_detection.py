"""Fraud detection on raw transaction records (the finance use case from the intro).

Run with::

    python examples/fraud_detection.py

Shows the full preprocessing path the paper describes for messy real-world data:
string-valued features are hashed to floats, the label column is stripped before
detection, and Quorum's anomaly scores are compared against a classical Isolation
Forest on the same records.
"""

import numpy as np

from repro import QuorumDetector, evaluate_top_k
from repro.baselines import IsolationForestDetector
from repro.data.preprocessing import preprocess_records


def synthesize_transactions(num_normal=400, num_fraud=12, seed=3):
    """Generate a plausible stream of card transactions with a few frauds."""
    rng = np.random.default_rng(seed)
    merchants = ["grocer", "pharmacy", "coffee", "transit", "bookstore"]
    records = []
    for _ in range(num_normal):
        records.append({
            "amount": float(rng.lognormal(mean=3.2, sigma=0.5)),
            "merchant": merchants[int(rng.integers(len(merchants)))],
            "hour_of_day": int(rng.integers(7, 22)),
            "days_since_last": float(rng.exponential(1.5)),
            "same_country": 1,
            "is_fraud": 0,
        })
    for _ in range(num_fraud):
        records.append({
            "amount": float(rng.lognormal(mean=7.5, sigma=0.4)),
            "merchant": "wire_transfer",
            "hour_of_day": int(rng.integers(0, 5)),
            "days_since_last": float(rng.exponential(0.05)),
            "same_country": 0,
            "is_fraud": 1,
        })
    rng.shuffle(records)
    return records


def main() -> None:
    records = synthesize_transactions()
    dataset = preprocess_records(records, label_key="is_fraud", name="card_fraud")
    print(f"Preprocessed {dataset.num_samples} transactions "
          f"({dataset.num_anomalies} frauds) into {dataset.num_features} "
          f"hashed/normalized features: {dataset.feature_names}")

    detector = QuorumDetector(ensemble_groups=50, shots=4096, seed=1,
                              anomaly_fraction_estimate=0.03,
                              bucket_probability=0.75)
    detector.fit(dataset)
    quorum_report = evaluate_top_k(detector.anomaly_scores(), dataset.labels,
                                   dataset.num_anomalies)

    forest = IsolationForestDetector(num_trees=100, seed=1)
    forest_scores = forest.fit_scores(dataset.data)
    forest_report = evaluate_top_k(forest_scores, dataset.labels,
                                   dataset.num_anomalies)

    print("\nMethod             precision  recall   F1")
    print(f"Quorum (quantum)      {quorum_report.precision:6.3f}  {quorum_report.recall:6.3f}  {quorum_report.f1:6.3f}")
    print(f"Isolation Forest      {forest_report.precision:6.3f}  {forest_report.recall:6.3f}  {forest_report.f1:6.3f}")

    print("\nTop 8 transactions by Quorum anomaly score:")
    scores = detector.anomaly_scores()
    for index in detector.ranking()[:8]:
        record = records[index]
        tag = "FRAUD" if dataset.labels[index] else "ok"
        print(f"  score={scores[index]:7.2f}  amount={record['amount']:9.2f}  "
              f"merchant={record['merchant']:13s}  {tag}")


if __name__ == "__main__":
    main()
