"""Pytest bootstrap: make ``src/`` importable even without an editable install.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without the ``wheel`` package); this hook
only exists so that cloning the repository and running ``pytest`` immediately works.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
