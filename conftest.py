"""Pytest bootstrap: make ``src/`` importable even without an editable install.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without the ``wheel`` package); this hook
only exists so that cloning the repository and running ``pytest`` immediately works.

It also exposes ``--executor``/``--jobs`` options that select the ensemble
executor strategy for the benchmark suite (exported through the
``QUORUM_EXECUTOR``/``QUORUM_N_JOBS`` environment variables, which
``ExperimentSettings`` reads), so CI can exercise e.g. the thread executor with
``pytest benchmarks --executor threads --jobs 2``, plus
``--fused-members``/``--no-fused-members`` (exported as
``QUORUM_FUSED_MEMBERS``) to sweep cross-member fused execution.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    group = parser.getgroup("quorum")
    group.addoption("--executor", action="store", default=None,
                    help="ensemble executor strategy for benchmark runs "
                         "(auto/serial/threads/processes)")
    group.addoption("--jobs", action="store", default=None, type=int,
                    help="ensemble workers for benchmark runs")
    group.addoption("--fused-members", dest="fused_members",
                    action="store_const", const="1", default=None,
                    help="force cross-member fused execution for benchmark "
                         "runs")
    group.addoption("--no-fused-members", dest="fused_members",
                    action="store_const", const="0",
                    help="disable cross-member fused execution for benchmark "
                         "runs")


def pytest_configure(config):
    executor = config.getoption("--executor")
    jobs = config.getoption("--jobs")
    fused_members = config.getoption("fused_members")
    if executor is not None:
        os.environ["QUORUM_EXECUTOR"] = executor
    if jobs is not None:
        os.environ["QUORUM_N_JOBS"] = str(jobs)
    if fused_members is not None:
        os.environ["QUORUM_FUSED_MEMBERS"] = fused_members
